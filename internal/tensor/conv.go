package tensor

import "fmt"

// Conv2D kernels in NHWC layout with OHWI filters, sufficient for the CIFAR
// convergence model. Sizes in the functional experiments are small, so the
// straightforward loop nest is adequate; the performance figures come from
// the discrete-event simulator, not from these kernels.

// Conv2DShape returns the output spatial shape of a convolution of
// input [n,h,w,c] with filter [co,kh,kw,c], stride s, "same"-style padding p.
func Conv2DShape(in Shape, filter Shape, stride, pad int) (Shape, error) {
	if in.Rank() != 4 || filter.Rank() != 4 {
		return nil, fmt.Errorf("tensor: conv2d shapes %v, %v: %w", in, filter, ErrShape)
	}
	if in[3] != filter[3] {
		return nil, fmt.Errorf("tensor: conv2d channels %d vs %d: %w", in[3], filter[3], ErrShape)
	}
	oh := (in[1]+2*pad-filter[1])/stride + 1
	ow := (in[2]+2*pad-filter[2])/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: conv2d empty output for %v ⊛ %v: %w", in, filter, ErrShape)
	}
	return Shape{in[0], oh, ow, filter[0]}, nil
}

// Conv2D computes out = in ⊛ filter with the given stride and symmetric
// zero padding. in:[n,h,w,ci], filter:[co,kh,kw,ci], out:[n,oh,ow,co].
func Conv2D(out, in, filter *Tensor, stride, pad int) error {
	want, err := Conv2DShape(in.shape, filter.shape, stride, pad)
	if err != nil {
		return err
	}
	if !out.shape.Equal(want) {
		return fmt.Errorf("tensor: conv2d out %v, want %v: %w", out.shape, want, ErrShape)
	}
	n, h, w, ci := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	co, kh, kw := filter.shape[0], filter.shape[1], filter.shape[2]
	oh, ow := out.shape[1], out.shape[2]
	iv, fv, ov := in.Float32s(), filter.Float32s(), out.Float32s()
	for i := range ov {
		ov[i] = 0
	}
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				outBase := ((b*oh+oy)*ow + ox) * co
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						inBase := ((b*h+iy)*w + ix) * ci
						for f := 0; f < co; f++ {
							fBase := ((f*kh+ky)*kw + kx) * ci
							var sum float32
							for c := 0; c < ci; c++ {
								sum += iv[inBase+c] * fv[fBase+c]
							}
							ov[outBase+f] += sum
						}
					}
				}
			}
		}
	}
	return nil
}

// Conv2DGrad computes gradients of Conv2D: din (may be nil to skip) and
// dfilter (may be nil to skip) from dout.
func Conv2DGrad(din, dfilter, dout, in, filter *Tensor, stride, pad int) error {
	n, h, w, ci := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	co, kh, kw := filter.shape[0], filter.shape[1], filter.shape[2]
	oh, ow := dout.shape[1], dout.shape[2]
	iv, fv, gv := in.Float32s(), filter.Float32s(), dout.Float32s()
	var dinv, dfv []float32
	if din != nil {
		if !din.shape.Equal(in.shape) {
			return fmt.Errorf("tensor: conv2dgrad din %v, want %v: %w", din.shape, in.shape, ErrShape)
		}
		dinv = din.Float32s()
		for i := range dinv {
			dinv[i] = 0
		}
	}
	if dfilter != nil {
		if !dfilter.shape.Equal(filter.shape) {
			return fmt.Errorf("tensor: conv2dgrad dfilter %v, want %v: %w", dfilter.shape, filter.shape, ErrShape)
		}
		dfv = dfilter.Float32s()
		for i := range dfv {
			dfv[i] = 0
		}
	}
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				outBase := ((b*oh+oy)*ow + ox) * co
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						inBase := ((b*h+iy)*w + ix) * ci
						for f := 0; f < co; f++ {
							g := gv[outBase+f]
							if g == 0 {
								continue
							}
							fBase := ((f*kh+ky)*kw + kx) * ci
							if dinv != nil {
								for c := 0; c < ci; c++ {
									dinv[inBase+c] += g * fv[fBase+c]
								}
							}
							if dfv != nil {
								for c := 0; c < ci; c++ {
									dfv[fBase+c] += g * iv[inBase+c]
								}
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// MaxPool2D computes 2×2 stride-2 max pooling of in:[n,h,w,c] into
// out:[n,h/2,w/2,c] and records the argmax index of each window in idx
// (Int32, same shape as out) for the backward pass.
func MaxPool2D(out, idx, in *Tensor) error {
	n, h, w, c := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh, ow := h/2, w/2
	want := Shape{n, oh, ow, c}
	if !out.shape.Equal(want) || !idx.shape.Equal(want) {
		return fmt.Errorf("tensor: maxpool out %v, want %v: %w", out.shape, want, ErrShape)
	}
	iv, ov, xv := in.Float32s(), out.Float32s(), idx.Int32s()
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for ch := 0; ch < c; ch++ {
					best := float32(0)
					bestIdx := -1
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							pos := ((b*h+oy*2+dy)*w+ox*2+dx)*c + ch
							if bestIdx < 0 || iv[pos] > best {
								best, bestIdx = iv[pos], pos
							}
						}
					}
					o := ((b*oh+oy)*ow+ox)*c + ch
					ov[o], xv[o] = best, int32(bestIdx)
				}
			}
		}
	}
	return nil
}

// MaxPool2DGrad scatters dout back through the argmax indices into din.
func MaxPool2DGrad(din, dout, idx *Tensor) error {
	if !dout.shape.Equal(idx.shape) {
		return fmt.Errorf("tensor: maxpoolgrad %v vs idx %v: %w", dout.shape, idx.shape, ErrShape)
	}
	dv, gv, xv := din.Float32s(), dout.Float32s(), idx.Int32s()
	for i := range dv {
		dv[i] = 0
	}
	for i := range gv {
		dv[xv[i]] += gv[i]
	}
	return nil
}
