package tensor

import (
	"fmt"

	"repro/internal/alloc"
)

// Conv2D kernels in NHWC layout with OHWI filters, sufficient for the CIFAR
// convergence model. Two implementations share one accumulation contract:
// every output element is a single accumulator summed in ascending
// (ky,kw,ci)-flattened patch order, and padded taps contribute exact ±0
// terms (adding ±0 to a finite accumulator that starts at +0 is an identity,
// and the accumulator can never become -0). Therefore the direct loop (which
// skips padded taps) and the im2col + blocked-matmul fast path (which
// materialises them as explicit zeros) produce bit-identical results, for
// any worker count.

// Conv2DShape returns the output spatial shape of a convolution of
// input [n,h,w,c] with filter [co,kh,kw,c], stride s, "same"-style padding p.
func Conv2DShape(in Shape, filter Shape, stride, pad int) (Shape, error) {
	if in.Rank() != 4 || filter.Rank() != 4 {
		return nil, fmt.Errorf("tensor: conv2d shapes %v, %v: %w", in, filter, ErrShape)
	}
	if in[3] != filter[3] {
		return nil, fmt.Errorf("tensor: conv2d channels %d vs %d: %w", in[3], filter[3], ErrShape)
	}
	oh := (in[1]+2*pad-filter[1])/stride + 1
	ow := (in[2]+2*pad-filter[2])/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: conv2d empty output for %v ⊛ %v: %w", in, filter, ErrShape)
	}
	return Shape{in[0], oh, ow, filter[0]}, nil
}

// convGeom carries the resolved loop bounds shared by the conv kernels.
type convGeom struct {
	n, h, w, ci   int
	co, kh, kw    int
	oh, ow        int
	stride, pad   int
	patchLen      int // kh*kw*ci, the im2col row length
	patches       int // oh*ow, patch rows per sample
	perSampleMACs int // oh*ow*co*kh*kw*ci
}

func convGeometry(in, filter Shape, oh, ow, stride, pad int) convGeom {
	g := convGeom{
		n: in[0], h: in[1], w: in[2], ci: in[3],
		co: filter[0], kh: filter[1], kw: filter[2],
		oh: oh, ow: ow, stride: stride, pad: pad,
	}
	g.patchLen = g.kh * g.kw * g.ci
	g.patches = g.oh * g.ow
	g.perSampleMACs = g.patches * g.co * g.patchLen
	return g
}

// fillPatches materialises sample b's im2col patch matrix [patches, patchLen]
// into dst: row p = flattened (ky,kx,c) input window of output position p,
// with explicit zeros where the window hangs over the padding.
func fillPatches(dst, iv []float32, g convGeom, b int) {
	for oy := 0; oy < g.oh; oy++ {
		for ox := 0; ox < g.ow; ox++ {
			row := dst[(oy*g.ow+ox)*g.patchLen : (oy*g.ow+ox+1)*g.patchLen]
			for ky := 0; ky < g.kh; ky++ {
				iy := oy*g.stride + ky - g.pad
				for kx := 0; kx < g.kw; kx++ {
					seg := row[(ky*g.kw+kx)*g.ci : (ky*g.kw+kx+1)*g.ci]
					ix := ox*g.stride + kx - g.pad
					if iy < 0 || iy >= g.h || ix < 0 || ix >= g.w {
						for c := range seg {
							seg[c] = 0
						}
						continue
					}
					inBase := ((b*g.h+iy)*g.w + ix) * g.ci
					copy(seg, iv[inBase:inBase+g.ci])
				}
			}
		}
	}
}

// Conv2D computes out = in ⊛ filter with the given stride and symmetric
// zero padding. in:[n,h,w,ci], filter:[co,kh,kw,ci], out:[n,oh,ow,co].
// Samples run in parallel; above im2colMinWork per-sample multiply-adds each
// sample goes through a scratch im2col patch matrix and the blocked
// dot-product matmul kernel (the OHWI filter is already its own [co,
// kh*kw*ci] row matrix).
func Conv2D(out, in, filter *Tensor, stride, pad int) error {
	want, err := Conv2DShape(in.shape, filter.shape, stride, pad)
	if err != nil {
		return err
	}
	if !out.shape.Equal(want) {
		return fmt.Errorf("tensor: conv2d out %v, want %v: %w", out.shape, want, ErrShape)
	}
	g := convGeometry(in.shape, filter.shape, out.shape[1], out.shape[2], stride, pad)
	iv, fv, ov := in.Float32s(), filter.Float32s(), out.Float32s()
	sample := func(b int) {
		ovb := ov[b*g.patches*g.co : (b+1)*g.patches*g.co]
		if g.perSampleMACs >= im2colMinWork {
			patches := alloc.Scratch.GetF32(g.patches * g.patchLen)
			fillPatches(patches, iv, g, b)
			matMulTBRows(ovb, patches, fv, 0, g.patches, g.patchLen, g.co)
			alloc.Scratch.PutF32(patches)
			return
		}
		conv2DDirectSample(ovb, iv, fv, g, b)
	}
	if g.n > 1 && g.n*g.perSampleMACs >= minParFMA {
		pfor(g.n, 1, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				sample(b)
			}
		})
	} else {
		for b := 0; b < g.n; b++ {
			sample(b)
		}
	}
	return nil
}

// conv2DDirectSample is the small-shape forward path: one flat accumulator
// per output element, taps visited in ascending (ky,kx,c) order, padded taps
// skipped (a ±0 identity — see the package comment above).
func conv2DDirectSample(ovb, iv, fv []float32, g convGeom, b int) {
	for oy := 0; oy < g.oh; oy++ {
		for ox := 0; ox < g.ow; ox++ {
			outBase := (oy*g.ow + ox) * g.co
			for f := 0; f < g.co; f++ {
				var sum float32
				for ky := 0; ky < g.kh; ky++ {
					iy := oy*g.stride + ky - g.pad
					if iy < 0 || iy >= g.h {
						continue
					}
					for kx := 0; kx < g.kw; kx++ {
						ix := ox*g.stride + kx - g.pad
						if ix < 0 || ix >= g.w {
							continue
						}
						inBase := ((b*g.h+iy)*g.w + ix) * g.ci
						fBase := ((f*g.kh+ky)*g.kw + kx) * g.ci
						for c := 0; c < g.ci; c++ {
							sum += iv[inBase+c] * fv[fBase+c]
						}
					}
				}
				ovb[outBase+f] = sum
			}
		}
	}
}

// Conv2DGrad computes gradients of Conv2D: din (may be nil to skip) and
// dfilter (may be nil to skip) from dout.
//
// din is sample-independent, so samples run in parallel with disjoint
// writes. dfilter reduces over the batch: samples are grouped into fixed
// convChunkSamples-sized chunks whose boundaries depend only on the batch
// size, each chunk accumulates into a private scratch partial, and the
// partials are reduced into dfilter in ascending chunk order — the result is
// therefore independent of the worker count.
func Conv2DGrad(din, dfilter, dout, in, filter *Tensor, stride, pad int) error {
	g := convGeometry(in.shape, filter.shape, dout.shape[1], dout.shape[2], stride, pad)
	iv, fv, gv := in.Float32s(), filter.Float32s(), dout.Float32s()
	var dinv, dfv []float32
	if din != nil {
		if !din.shape.Equal(in.shape) {
			return fmt.Errorf("tensor: conv2dgrad din %v, want %v: %w", din.shape, in.shape, ErrShape)
		}
		dinv = din.Float32s()
	}
	if dfilter != nil {
		if !dfilter.shape.Equal(filter.shape) {
			return fmt.Errorf("tensor: conv2dgrad dfilter %v, want %v: %w", dfilter.shape, filter.shape, ErrShape)
		}
		dfv = dfilter.Float32s()
	}
	im2col := g.perSampleMACs >= im2colMinWork
	par := g.n > 1 && g.n*g.perSampleMACs >= minParFMA

	if dinv != nil {
		dinSample := func(b int) {
			dinb := dinv[b*g.h*g.w*g.ci : (b+1)*g.h*g.w*g.ci]
			for i := range dinb {
				dinb[i] = 0
			}
			gvb := gv[b*g.patches*g.co : (b+1)*g.patches*g.co]
			if im2col {
				dpatches := alloc.Scratch.GetF32(g.patches * g.patchLen)
				matMulRows(dpatches, gvb, fv, 0, g.patches, g.co, g.patchLen)
				col2imAdd(dinv, dpatches, g, b)
				alloc.Scratch.PutF32(dpatches)
				return
			}
			convGradDinDirectSample(dinv, gvb, fv, g, b)
		}
		if par {
			pfor(g.n, 1, func(lo, hi int) {
				for b := lo; b < hi; b++ {
					dinSample(b)
				}
			})
		} else {
			for b := 0; b < g.n; b++ {
				dinSample(b)
			}
		}
	}

	if dfv != nil {
		for i := range dfv {
			dfv[i] = 0
		}
		chunks := (g.n + convChunkSamples - 1) / convChunkSamples
		partials := make([][]float32, chunks)
		chunk := func(ci int) {
			partial := alloc.Scratch.GetF32(g.co * g.patchLen)
			for i := range partial {
				partial[i] = 0
			}
			lo := ci * convChunkSamples
			hi := lo + convChunkSamples
			if hi > g.n {
				hi = g.n
			}
			for b := lo; b < hi; b++ {
				gvb := gv[b*g.patches*g.co : (b+1)*g.patches*g.co]
				if im2col {
					patches := alloc.Scratch.GetF32(g.patches * g.patchLen)
					fillPatches(patches, iv, g, b)
					matMulTAAcc(partial, gvb, patches, 0, g.co, g.patches, g.co, g.patchLen)
					alloc.Scratch.PutF32(patches)
				} else {
					convGradDfilterDirectSample(partial, gvb, iv, g, b)
				}
			}
			partials[ci] = partial
		}
		if par && chunks > 1 {
			pfor(chunks, 1, func(lo, hi int) {
				for ci := lo; ci < hi; ci++ {
					chunk(ci)
				}
			})
		} else {
			for ci := 0; ci < chunks; ci++ {
				chunk(ci)
			}
		}
		for _, partial := range partials {
			for i := range dfv {
				dfv[i] += partial[i]
			}
			alloc.Scratch.PutF32(partial)
		}
	}
	return nil
}

// col2imAdd scatters sample b's patch-space gradient [patches, patchLen]
// back onto the input gradient, visiting patches in ascending order so every
// input position accumulates its contributions in a fixed order.
func col2imAdd(dinv, dpatches []float32, g convGeom, b int) {
	for oy := 0; oy < g.oh; oy++ {
		for ox := 0; ox < g.ow; ox++ {
			row := dpatches[(oy*g.ow+ox)*g.patchLen : (oy*g.ow+ox+1)*g.patchLen]
			for ky := 0; ky < g.kh; ky++ {
				iy := oy*g.stride + ky - g.pad
				if iy < 0 || iy >= g.h {
					continue
				}
				for kx := 0; kx < g.kw; kx++ {
					ix := ox*g.stride + kx - g.pad
					if ix < 0 || ix >= g.w {
						continue
					}
					seg := row[(ky*g.kw+kx)*g.ci : (ky*g.kw+kx+1)*g.ci]
					inBase := ((b*g.h+iy)*g.w + ix) * g.ci
					dst := dinv[inBase : inBase+g.ci]
					for c := range seg {
						dst[c] += seg[c]
					}
				}
			}
		}
	}
}

// convGradDinDirectSample mirrors col2imAdd ∘ (dout @ filter) with direct
// loops: per (patch, tap) the filter-output reduction runs f-ascending into
// a fresh accumulator, then adds to the input gradient — the same
// per-element order as the im2col path.
func convGradDinDirectSample(dinv, gvb, fv []float32, g convGeom, b int) {
	for oy := 0; oy < g.oh; oy++ {
		for ox := 0; ox < g.ow; ox++ {
			outBase := (oy*g.ow + ox) * g.co
			for ky := 0; ky < g.kh; ky++ {
				iy := oy*g.stride + ky - g.pad
				if iy < 0 || iy >= g.h {
					continue
				}
				for kx := 0; kx < g.kw; kx++ {
					ix := ox*g.stride + kx - g.pad
					if ix < 0 || ix >= g.w {
						continue
					}
					inBase := ((b*g.h+iy)*g.w + ix) * g.ci
					for c := 0; c < g.ci; c++ {
						var s float32
						for f := 0; f < g.co; f++ {
							s += gvb[outBase+f] * fv[((f*g.kh+ky)*g.kw+kx)*g.ci+c]
						}
						dinv[inBase+c] += s
					}
				}
			}
		}
	}
}

// convGradDfilterDirectSample accumulates sample b's filter-gradient
// contribution into partial [co, patchLen], patches ascending — the same
// per-element order as matMulTAAcc over the im2col patch matrix.
func convGradDfilterDirectSample(partial, gvb, iv []float32, g convGeom, b int) {
	for oy := 0; oy < g.oh; oy++ {
		for ox := 0; ox < g.ow; ox++ {
			outBase := (oy*g.ow + ox) * g.co
			for f := 0; f < g.co; f++ {
				gout := gvb[outBase+f]
				for ky := 0; ky < g.kh; ky++ {
					iy := oy*g.stride + ky - g.pad
					if iy < 0 || iy >= g.h {
						continue
					}
					for kx := 0; kx < g.kw; kx++ {
						ix := ox*g.stride + kx - g.pad
						if ix < 0 || ix >= g.w {
							continue
						}
						inBase := ((b*g.h+iy)*g.w + ix) * g.ci
						fBase := (f*g.kh*g.kw + ky*g.kw + kx) * g.ci
						for c := 0; c < g.ci; c++ {
							partial[fBase+c] += gout * iv[inBase+c]
						}
					}
				}
			}
		}
	}
}

// MaxPool2D computes 2×2 stride-2 max pooling of in:[n,h,w,c] into
// out:[n,h/2,w/2,c] and records the argmax index of each window in idx
// (Int32, same shape as out) for the backward pass. Samples run in parallel;
// windows are disjoint so writes never overlap.
func MaxPool2D(out, idx, in *Tensor) error {
	n, h, w, c := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh, ow := h/2, w/2
	want := Shape{n, oh, ow, c}
	if !out.shape.Equal(want) || !idx.shape.Equal(want) {
		return fmt.Errorf("tensor: maxpool out %v, want %v: %w", out.shape, want, ErrShape)
	}
	iv, ov, xv := in.Float32s(), out.Float32s(), idx.Int32s()
	pool := func(lo, hi int) {
		for b := lo; b < hi; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					for ch := 0; ch < c; ch++ {
						best := float32(0)
						bestIdx := -1
						for dy := 0; dy < 2; dy++ {
							for dx := 0; dx < 2; dx++ {
								pos := ((b*h+oy*2+dy)*w+ox*2+dx)*c + ch
								if bestIdx < 0 || iv[pos] > best {
									best, bestIdx = iv[pos], pos
								}
							}
						}
						o := ((b*oh+oy)*ow+ox)*c + ch
						ov[o], xv[o] = best, int32(bestIdx)
					}
				}
			}
		}
	}
	if n > 1 && len(iv) >= minParElems {
		pfor(n, 1, pool)
	} else {
		pool(0, n)
	}
	return nil
}

// MaxPool2DGrad scatters dout back through the argmax indices into din.
// Each sample's indices point only into that sample's input region, so
// samples run in parallel with disjoint writes.
func MaxPool2DGrad(din, dout, idx *Tensor) error {
	if !dout.shape.Equal(idx.shape) {
		return fmt.Errorf("tensor: maxpoolgrad %v vs idx %v: %w", dout.shape, idx.shape, ErrShape)
	}
	dv, gv, xv := din.Float32s(), dout.Float32s(), idx.Int32s()
	n := din.shape[0]
	if n == 0 {
		return nil
	}
	inPer, outPer := len(dv)/n, len(gv)/n
	scatter := func(lo, hi int) {
		for b := lo; b < hi; b++ {
			dst := dv[b*inPer : (b+1)*inPer]
			for i := range dst {
				dst[i] = 0
			}
			for i := b * outPer; i < (b+1)*outPer; i++ {
				dv[xv[i]] += gv[i]
			}
		}
	}
	if n > 1 && len(dv) >= minParElems {
		pfor(n, 1, scatter)
	} else {
		scatter(0, n)
	}
	return nil
}
