package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestBatchWriterRoundTrip(t *testing.T) {
	buf := make([]byte, 128)
	w, err := NewBatchWriter(buf)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[uint32][]byte{
		7:  []byte("gradient"),
		3:  {},
		12: bytes.Repeat([]byte{0xee}, 40),
	}
	for _, id := range []uint32{7, 3, 12} {
		if err := w.Append(id, payloads[id]); err != nil {
			t.Fatalf("Append(%d): %v", id, err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d, want 3", w.Count())
	}
	want := BatchHeaderSize + SubMsgSize(8) + SubMsgSize(0) + SubMsgSize(40)
	if w.Len() != want {
		t.Fatalf("Len = %d, want %d", w.Len(), want)
	}
	// Decoding the full slot (with trailing garbage past Len) must still
	// yield exactly the appended messages: the count header delimits.
	msgs, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("decoded %d messages, want 3", len(msgs))
	}
	order := []uint32{7, 3, 12}
	for i, m := range msgs {
		if m.ID != order[i] {
			t.Fatalf("msg %d id %d, want %d", i, m.ID, order[i])
		}
		if !bytes.Equal(m.Payload, payloads[m.ID]) {
			t.Fatalf("msg %d payload mismatch", i)
		}
	}
}

func TestBatchWriterReset(t *testing.T) {
	buf := make([]byte, 64)
	w, err := NewBatchWriter(buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	w.Reset()
	if w.Count() != 0 || w.Len() != BatchHeaderSize {
		t.Fatalf("after Reset: count=%d len=%d", w.Count(), w.Len())
	}
	if err := w.Append(2, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	msgs, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].ID != 2 || string(msgs[0].Payload) != "xy" {
		t.Fatalf("decoded %+v after reset", msgs)
	}
}

func TestBatchWriterSpace(t *testing.T) {
	if _, err := NewBatchWriter(make([]byte, 2)); !errors.Is(err, ErrBatchSpace) {
		t.Fatalf("tiny buffer: %v, want ErrBatchSpace", err)
	}
	w, err := NewBatchWriter(make([]byte, BatchHeaderSize+SubMsgSize(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("full")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, nil); !errors.Is(err, ErrBatchSpace) {
		t.Fatalf("overflow append: %v, want ErrBatchSpace", err)
	}
	// A failed Append must not corrupt the batch.
	msgs, err := DecodeBatch(w.buf)
	if err != nil || len(msgs) != 1 || msgs[0].ID != 1 {
		t.Fatalf("batch after failed append: %v %+v", err, msgs)
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2},                   // short header
		{0xff, 0xff, 0xff, 0xff}, // absurd count, no room
		{1, 0, 0, 0},             // count 1, no sub-message header
		{1, 0, 0, 0, 9, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}, // length past end
	}
	for i, b := range cases {
		if _, err := DecodeBatch(b); !errors.Is(err, ErrMalformed) {
			t.Fatalf("case %d: %v, want ErrMalformed", i, err)
		}
	}
	if msgs, err := DecodeBatch([]byte{0, 0, 0, 0}); err != nil || len(msgs) != 0 {
		t.Fatalf("empty batch: %v %+v", err, msgs)
	}
}

// FuzzDecodeBatch feeds arbitrary bytes to the coalesced-batch decoder: it
// must never panic, and any accepted input must re-encode through
// BatchWriter into a frame that decodes to the same messages (the framing is
// canonical up to trailing slack).
func FuzzDecodeBatch(f *testing.F) {
	seed := func(build func(w *BatchWriter)) []byte {
		buf := make([]byte, 256)
		w, _ := NewBatchWriter(buf)
		build(w)
		return append([]byte(nil), buf[:w.Len()]...)
	}
	f.Add(seed(func(w *BatchWriter) {}))
	f.Add(seed(func(w *BatchWriter) { w.Append(5, []byte("hello")) }))
	f.Add(seed(func(w *BatchWriter) {
		w.Append(0, nil)
		w.Append(1, bytes.Repeat([]byte{7}, 100))
		w.Append(1<<20, []byte{0})
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		msgs, err := DecodeBatch(b)
		if err != nil {
			return
		}
		size := BatchHeaderSize
		for _, m := range msgs {
			size += SubMsgSize(len(m.Payload))
		}
		if size > len(b) {
			t.Fatalf("decoded %d framed bytes out of %d input bytes", size, len(b))
		}
		out := make([]byte, size)
		w, err := NewBatchWriter(out)
		if err != nil {
			t.Fatalf("re-encode writer: %v", err)
		}
		for _, m := range msgs {
			if err := w.Append(m.ID, m.Payload); err != nil {
				t.Fatalf("re-encode append: %v", err)
			}
		}
		if w.Len() != size {
			t.Fatalf("re-encoded %d bytes, computed %d", w.Len(), size)
		}
		msgs2, err := DecodeBatch(out)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if len(msgs2) != len(msgs) {
			t.Fatalf("round trip count %d -> %d", len(msgs), len(msgs2))
		}
		for i := range msgs {
			if msgs2[i].ID != msgs[i].ID || !bytes.Equal(msgs2[i].Payload, msgs[i].Payload) {
				t.Fatalf("round trip diverged at message %d", i)
			}
		}
	})
}
