package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTensorMessageUnmarshal feeds arbitrary bytes to the decoder: it must
// never panic, and any input it accepts must decode to a message whose
// canonical re-encoding round-trips exactly (Unmarshal ∘ Marshal is the
// identity on decoded messages, even when the original input used a
// non-canonical encoding such as duplicate or zero-valued tags).
func FuzzTensorMessageUnmarshal(f *testing.F) {
	seeds := []TensorMessage{
		{},
		{Name: "grad/w", DType: 1, Shape: []int64{12, 4}, Payload: []byte{1, 2, 3, 4}, Seq: 9, Key: 2},
		{Name: "loss", Seq: 1 << 40},
		{Payload: bytes.Repeat([]byte{0xab}, 300)},
		{Shape: []int64{1, 1, 1, 1, 1, 1, 1, 1}},
	}
	for i := range seeds {
		f.Add(seeds[i].Marshal())
	}
	f.Add([]byte{tagName, 0xff, 0xff, 0xff, 0xff, 0xff}) // huge length prefix
	f.Add([]byte{99})                                    // unknown tag

	f.Fuzz(func(t *testing.T, b []byte) {
		var m TensorMessage
		if err := m.Unmarshal(b); err != nil {
			return
		}
		out := m.Marshal()
		var m2 TensorMessage
		if err := m2.Unmarshal(out); err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip diverged:\n  decoded: %+v\n  re-decoded: %+v", m, m2)
		}
		if out2 := m2.Marshal(); !bytes.Equal(out, out2) {
			t.Fatalf("canonical encoding not a fixpoint:\n  %x\n  %x", out, out2)
		}
	})
}
