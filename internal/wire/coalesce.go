package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Coalesced sub-message framing: many small tensors bound for the same peer
// share one RDMA slot, paying a single flag/slot round-trip instead of one
// per tensor. The frame is deliberately simpler than TensorMessage — the
// receiver already knows each sub-message's dtype and shape from the graph
// edge, so only an edge id and a length prefix ride on the wire:
//
//	batch  = count:u32  msg*
//	msg    = id:u32  len:u32  payload[len]
//
// All integers little-endian. The frame carries no padding: sub-messages are
// packed back to back, and the enclosing RDMA slot provides the tail flag.

// ErrBatchSpace reports an Append that does not fit the writer's buffer.
var ErrBatchSpace = errors.New("wire: coalesced batch capacity exceeded")

// Framing overheads of the coalesced batch format.
const (
	// BatchHeaderSize is the fixed per-batch prefix (the count word).
	BatchHeaderSize = 4
	// SubMsgHeaderSize is the per-sub-message prefix (id + length).
	SubMsgHeaderSize = 8
)

// SubMsgSize returns the framed size of one sub-message with the given
// payload size.
func SubMsgSize(payload int) int { return SubMsgHeaderSize + payload }

// SubMsg is one decoded sub-message. Payload aliases the decoded buffer;
// callers that outlive the buffer must copy it.
type SubMsg struct {
	ID      uint32
	Payload []byte
}

// BatchWriter packs sub-messages into a caller-provided buffer (typically an
// RDMA staging slot) using the batch framing. The count header is patched in
// place on every Append, so the buffer prefix [0, Len()) is always a valid
// batch image.
type BatchWriter struct {
	buf   []byte
	used  int
	count uint32
}

// NewBatchWriter wraps buf as an empty batch. The buffer must hold at least
// BatchHeaderSize bytes.
func NewBatchWriter(buf []byte) (*BatchWriter, error) {
	if len(buf) < BatchHeaderSize {
		return nil, fmt.Errorf("wire: batch buffer %d bytes, header needs %d: %w",
			len(buf), BatchHeaderSize, ErrBatchSpace)
	}
	w := &BatchWriter{buf: buf}
	w.Reset()
	return w, nil
}

// Reset empties the batch for reuse.
func (w *BatchWriter) Reset() {
	w.used = BatchHeaderSize
	w.count = 0
	binary.LittleEndian.PutUint32(w.buf, 0)
}

// Append adds one sub-message, returning ErrBatchSpace if it does not fit.
func (w *BatchWriter) Append(id uint32, payload []byte) error {
	if w.used+SubMsgSize(len(payload)) > len(w.buf) {
		return fmt.Errorf("wire: sub-message %d (%d bytes) into %d free: %w",
			id, len(payload), len(w.buf)-w.used, ErrBatchSpace)
	}
	binary.LittleEndian.PutUint32(w.buf[w.used:], id)
	binary.LittleEndian.PutUint32(w.buf[w.used+4:], uint32(len(payload)))
	copy(w.buf[w.used+SubMsgHeaderSize:], payload)
	w.used += SubMsgSize(len(payload))
	w.count++
	binary.LittleEndian.PutUint32(w.buf, w.count)
	return nil
}

// Len returns the encoded batch size so far (including the header).
func (w *BatchWriter) Len() int { return w.used }

// Count returns the number of sub-messages appended since the last Reset.
func (w *BatchWriter) Count() int { return int(w.count) }

// DecodeBatch parses a batch image. It is total on arbitrary bytes: a
// truncated header, an impossible count, or a sub-message running past the
// buffer all return ErrMalformed without panicking. Returned payloads alias
// buf.
func DecodeBatch(buf []byte) ([]SubMsg, error) {
	if len(buf) < BatchHeaderSize {
		return nil, fmt.Errorf("wire: short batch header (%d bytes): %w", len(buf), ErrMalformed)
	}
	count := binary.LittleEndian.Uint32(buf)
	rest := buf[BatchHeaderSize:]
	// Each sub-message needs at least its header, so a count beyond
	// len(rest)/SubMsgHeaderSize cannot be satisfied; checking up front keeps
	// the allocation below safe against adversarial counts.
	if uint64(count) > uint64(len(rest))/SubMsgHeaderSize {
		return nil, fmt.Errorf("wire: batch count %d exceeds %d remaining bytes: %w",
			count, len(rest), ErrMalformed)
	}
	msgs := make([]SubMsg, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < SubMsgHeaderSize {
			return nil, fmt.Errorf("wire: truncated sub-message %d header: %w", i, ErrMalformed)
		}
		id := binary.LittleEndian.Uint32(rest)
		n := binary.LittleEndian.Uint32(rest[4:])
		if uint64(n) > uint64(len(rest)-SubMsgHeaderSize) {
			return nil, fmt.Errorf("wire: sub-message %d claims %d of %d bytes: %w",
				i, n, len(rest)-SubMsgHeaderSize, ErrMalformed)
		}
		msgs = append(msgs, SubMsg{ID: id, Payload: rest[SubMsgHeaderSize : SubMsgHeaderSize+n]})
		rest = rest[SubMsgSize(int(n)):]
	}
	return msgs, nil
}
