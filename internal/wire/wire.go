// Package wire implements the compact binary message encoding the RPC
// baseline uses, modelled on protocol buffers: varint tags, length-delimited
// fields, and — deliberately — payload copies on both marshal and unmarshal.
// Those copies are exactly the serialization overhead the paper attributes
// to RPC-based tensor transfer (§2.2) and eliminates with the device
// interface; keeping them honest here is what makes the baseline fair.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrMalformed reports undecodable input.
var ErrMalformed = errors.New("wire: malformed message")

// Field tags of TensorMessage.
const (
	tagName    = 1
	tagDType   = 2
	tagShape   = 3
	tagPayload = 4
	tagSeq     = 5
	tagKey     = 6
)

// TensorMessage is the unit the RPC baseline moves: one named tensor.
type TensorMessage struct {
	// Name identifies the graph edge or variable the tensor belongs to.
	Name string
	// DType is the element type (tensor.DType numeric value).
	DType uint32
	// Shape holds the dimensions.
	Shape []int64
	// Payload is the tensor's bytes. Marshal and Unmarshal copy it.
	Payload []byte
	// Seq is the mini-batch iteration the tensor belongs to.
	Seq uint64
	// Key is an optional routing key (e.g. parameter-server shard).
	Key uint64
}

// MarshaledSize returns the exact encoded size.
func (m *TensorMessage) MarshaledSize() int {
	n := 0
	if m.Name != "" {
		n += 1 + uvarintLen(uint64(len(m.Name))) + len(m.Name)
	}
	if m.DType != 0 {
		n += 1 + uvarintLen(uint64(m.DType))
	}
	if len(m.Shape) > 0 {
		packed := 0
		for _, d := range m.Shape {
			packed += uvarintLen(uint64(d))
		}
		n += 1 + uvarintLen(uint64(packed)) + packed
	}
	if len(m.Payload) > 0 {
		n += 1 + uvarintLen(uint64(len(m.Payload))) + len(m.Payload)
	}
	if m.Seq != 0 {
		n += 1 + uvarintLen(m.Seq)
	}
	if m.Key != 0 {
		n += 1 + uvarintLen(m.Key)
	}
	return n
}

// Marshal encodes the message into a freshly allocated buffer, copying the
// payload (the serialization cost of the RPC abstraction).
func (m *TensorMessage) Marshal() []byte {
	buf := make([]byte, 0, m.MarshaledSize())
	if m.Name != "" {
		buf = append(buf, tagName)
		buf = binary.AppendUvarint(buf, uint64(len(m.Name)))
		buf = append(buf, m.Name...)
	}
	if m.DType != 0 {
		buf = append(buf, tagDType)
		buf = binary.AppendUvarint(buf, uint64(m.DType))
	}
	if len(m.Shape) > 0 {
		packed := 0
		for _, d := range m.Shape {
			packed += uvarintLen(uint64(d))
		}
		buf = append(buf, tagShape)
		buf = binary.AppendUvarint(buf, uint64(packed))
		for _, d := range m.Shape {
			buf = binary.AppendUvarint(buf, uint64(d))
		}
	}
	if len(m.Payload) > 0 {
		buf = append(buf, tagPayload)
		buf = binary.AppendUvarint(buf, uint64(len(m.Payload)))
		buf = append(buf, m.Payload...)
	}
	if m.Seq != 0 {
		buf = append(buf, tagSeq)
		buf = binary.AppendUvarint(buf, m.Seq)
	}
	if m.Key != 0 {
		buf = append(buf, tagKey)
		buf = binary.AppendUvarint(buf, m.Key)
	}
	return buf
}

// Unmarshal decodes buf into m, copying the payload out of buf (the
// deserialization cost at the receiver). Unknown tags are rejected.
func (m *TensorMessage) Unmarshal(buf []byte) error {
	*m = TensorMessage{}
	for len(buf) > 0 {
		tag := buf[0]
		buf = buf[1:]
		switch tag {
		case tagName:
			s, rest, err := readBytes(buf)
			if err != nil {
				return err
			}
			m.Name = string(s)
			buf = rest
		case tagDType:
			v, rest, err := readUvarint(buf)
			if err != nil {
				return err
			}
			m.DType = uint32(v)
			buf = rest
		case tagShape:
			s, rest, err := readBytes(buf)
			if err != nil {
				return err
			}
			for len(s) > 0 {
				v, r2, err := readUvarint(s)
				if err != nil {
					return err
				}
				m.Shape = append(m.Shape, int64(v))
				s = r2
			}
			buf = rest
		case tagPayload:
			s, rest, err := readBytes(buf)
			if err != nil {
				return err
			}
			m.Payload = append([]byte(nil), s...) // the receive-side copy
			buf = rest
		case tagSeq:
			v, rest, err := readUvarint(buf)
			if err != nil {
				return err
			}
			m.Seq = v
			buf = rest
		case tagKey:
			v, rest, err := readUvarint(buf)
			if err != nil {
				return err
			}
			m.Key = v
			buf = rest
		default:
			return fmt.Errorf("wire: unknown tag %d: %w", tag, ErrMalformed)
		}
	}
	return nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: truncated varint: %w", ErrMalformed)
	}
	return v, buf[n:], nil
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	n, rest, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, fmt.Errorf("wire: truncated field (%d of %d bytes): %w",
			len(rest), n, ErrMalformed)
	}
	return rest[:n], rest[n:], nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
