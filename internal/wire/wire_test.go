package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundtrip(t *testing.T) {
	msgs := []TensorMessage{
		{},
		{Name: "w0", DType: 1, Shape: []int64{4, 5}, Payload: []byte{1, 2, 3}, Seq: 7, Key: 3},
		{Name: "grad/layer1/weights", DType: 2, Shape: []int64{1024, 1024}, Payload: make([]byte, 4096), Seq: 1 << 40},
		{Payload: []byte{0xFF}},
		{Shape: []int64{0, 1, 2}},
	}
	for _, m := range msgs {
		enc := m.Marshal()
		if len(enc) != m.MarshaledSize() {
			t.Errorf("%+v: encoded %d bytes, MarshaledSize says %d", m, len(enc), m.MarshaledSize())
		}
		var got TensorMessage
		if err := got.Unmarshal(enc); err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if got.Name != m.Name || got.DType != m.DType || got.Seq != m.Seq || got.Key != m.Key {
			t.Errorf("scalar fields: got %+v, want %+v", got, m)
		}
		if !reflect.DeepEqual(got.Shape, m.Shape) && !(len(got.Shape) == 0 && len(m.Shape) == 0) {
			t.Errorf("shape: got %v, want %v", got.Shape, m.Shape)
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Errorf("payload mismatch (%d vs %d bytes)", len(got.Payload), len(m.Payload))
		}
	}
}

func TestUnmarshalCopiesPayload(t *testing.T) {
	m := TensorMessage{Payload: []byte{1, 2, 3, 4}}
	enc := m.Marshal()
	var got TensorMessage
	if err := got.Unmarshal(enc); err != nil {
		t.Fatal(err)
	}
	enc[len(enc)-1] = 99 // corrupt the buffer after decode
	if got.Payload[3] != 4 {
		t.Error("Unmarshal must copy payload out of the input buffer")
	}
}

func TestMalformed(t *testing.T) {
	cases := [][]byte{
		{tagName},           // missing length
		{tagName, 5, 'a'},   // truncated string
		{tagPayload, 0x80},  // unterminated varint
		{99, 1, 2},          // unknown tag
		{tagShape, 1, 0x80}, // truncated inner varint
		{tagDType, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, // overlong varint
	}
	for i, c := range cases {
		var m TensorMessage
		if err := m.Unmarshal(c); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: err = %v, want ErrMalformed", i, err)
		}
	}
}

// Property: marshal/unmarshal is the identity on all well-formed messages.
func TestRoundtripProperty(t *testing.T) {
	f := func(name string, dtype uint32, dims []uint16, payload []byte, seq, key uint64) bool {
		shape := make([]int64, len(dims))
		for i, d := range dims {
			shape[i] = int64(d)
		}
		m := TensorMessage{Name: name, DType: dtype, Shape: shape, Payload: payload, Seq: seq, Key: key}
		var got TensorMessage
		if err := got.Unmarshal(m.Marshal()); err != nil {
			return false
		}
		if got.Name != m.Name || got.DType != m.DType || got.Seq != m.Seq || got.Key != m.Key {
			return false
		}
		if len(got.Shape) != len(m.Shape) {
			return false
		}
		for i := range got.Shape {
			if got.Shape[i] != m.Shape[i] {
				return false
			}
		}
		return bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshal1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 1<<20)
	rng.Read(payload)
	m := TensorMessage{Name: "bench", DType: 1, Shape: []int64{512, 512}, Payload: payload}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Marshal()
	}
}

func BenchmarkUnmarshal1MB(b *testing.B) {
	payload := make([]byte, 1<<20)
	m := TensorMessage{Name: "bench", DType: 1, Shape: []int64{512, 512}, Payload: payload}
	enc := m.Marshal()
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got TensorMessage
		if err := got.Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: Unmarshal never panics on arbitrary bytes — it either decodes
// or reports ErrMalformed. (The RPC layer feeds it network input.)
func TestUnmarshalRobustness(t *testing.T) {
	f := func(data []byte) bool {
		var m TensorMessage
		err := m.Unmarshal(data)
		return err == nil || errors.Is(err, ErrMalformed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Adversarial prefixes of valid messages must also be safe.
	valid := (&TensorMessage{Name: "x", DType: 1, Shape: []int64{4, 4},
		Payload: make([]byte, 64), Seq: 9}).Marshal()
	for cut := 0; cut < len(valid); cut++ {
		var m TensorMessage
		if err := m.Unmarshal(valid[:cut]); err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("cut %d: unexpected error class %v", cut, err)
		}
	}
}
