package distributed

import (
	"errors"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// servingTestSpec mirrors the serve package's affine test model: out =
// x·w + b, all weights filled with float32(version), every output element
// exactly (n+1)·version — a served row proves its complete version.
func servingTestSpec(batch, n int) serve.ForwardSpec {
	return serve.ForwardSpec{
		Feed: "x", Fetch: "out",
		Batch: batch, Inputs: n, Classes: n,
		Build: func(b *graph.Builder) error {
			x := b.Placeholder("x", graph.Static(tensor.Float32, batch, n))
			w := b.Variable("w", graph.Static(tensor.Float32, n, n))
			bias := b.Variable("b", graph.Static(tensor.Float32, n))
			b.BiasAdd("out", b.MatMul("mm", x, w), bias)
			return b.Err()
		},
	}
}

func servingTestVars(t *testing.T, n int) *exec.VarStore {
	t.Helper()
	vs := exec.NewVarStore()
	if err := vs.Create("w", tensor.New(tensor.Float32, n, n)); err != nil {
		t.Fatal(err)
	}
	if err := vs.Create("b", tensor.New(tensor.Float32, n)); err != nil {
		t.Fatal(err)
	}
	return vs
}

func fillServingVars(t *testing.T, vs *exec.VarStore, v float32) {
	t.Helper()
	for _, name := range []string{"w", "b"} {
		tt, err := vs.VarTensor(name)
		if err != nil {
			t.Fatal(err)
		}
		tt.Fill(v)
	}
}

// TestServingFleetCrashRecovery drives the full replica-death path through
// the distributed wiring: lease expiry → routing eviction + publication-set
// removal → survivors keep serving and the trainer keeps publishing →
// restart under the same task name → readmission serves the current
// version.
func TestServingFleetCrashRecovery(t *testing.T) {
	const n = 8
	vars := servingTestVars(t, n)
	met := &metrics.Serve{}
	rec := &metrics.Recovery{}
	fleet, err := NewServingFleet(ServingConfig{
		Replicas: 2,
		Spec:     servingTestSpec(4, n),
		Vars:     vars,
		Heartbeat: HeartbeatConfig{
			Period: 2 * time.Millisecond, Timeout: 20 * time.Millisecond,
		},
		Metrics: met, Recovery: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	publish := func(v float32) uint64 {
		fillServingVars(t, vars, v)
		got, err := fleet.Publish()
		if err != nil {
			t.Fatalf("publish %v: %v", v, err)
		}
		return got
	}
	query := func() (serve.Result, error) {
		x := make([]float32, n)
		for i := range x {
			x[i] = 1
		}
		return fleet.Query(x)
	}
	awaitServed := func(v uint64) serve.Result {
		deadline := time.Now().Add(5 * time.Second)
		for {
			res, err := query()
			if err == nil && res.Version == v {
				return res
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet never served v%d (last: res=%+v err=%v)", v, res, err)
			}
			time.Sleep(time.Millisecond)
		}
	}

	if got := publish(1); got != 1 {
		t.Fatalf("first publish = v%d", got)
	}
	res := awaitServed(1)
	for i, p := range res.Probs {
		if want := float32(n+1) * 1; p != want {
			t.Fatalf("row[%d]=%v, want %v", i, p, want)
		}
	}

	// Kill replica0 mid-service; the detector must evict it.
	if err := fleet.KillReplica(serveReplicaTask(0)); err != nil {
		t.Fatal(err)
	}
	if !fleet.AwaitDead(serveReplicaTask(0), 5*time.Second) {
		t.Fatal("detector never expired the killed replica's lease")
	}
	deadline := time.Now().Add(5 * time.Second)
	for fleet.Table().Alive(serveReplicaTask(0)) {
		if time.Now().After(deadline) {
			t.Fatal("routing table never evicted the dead replica")
		}
		time.Sleep(time.Millisecond)
	}
	if rec.Snapshot().LeaseExpiries == 0 {
		t.Fatal("no lease expiry recorded")
	}

	// The trainer publishes on; the survivor serves the new version.
	if got := publish(2); got != 2 {
		t.Fatalf("publish with dead replica = v%d", got)
	}
	res = awaitServed(2)
	if res.Staleness > 1 {
		t.Fatalf("staleness %d > 1 with one replica down", res.Staleness)
	}

	// Restart under the same name: catch-up republish, then normal flow.
	if err := fleet.RestartReplica(serveReplicaTask(0)); err != nil {
		t.Fatal(err)
	}
	r0 := fleet.Replica(serveReplicaTask(0))
	if r0 == nil {
		t.Fatal("restarted replica not tracked")
	}
	deadline = time.Now().Add(5 * time.Second)
	for r0.ActiveVersion() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("readmitted replica at v%d, want v2", r0.ActiveVersion())
		}
		time.Sleep(time.Millisecond)
	}
	if rec.Snapshot().Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", rec.Snapshot().Rejoins)
	}

	// And it rides the next regular publication.
	if got := publish(3); got != 3 {
		t.Fatalf("post-restart publish = v%d", got)
	}
	deadline = time.Now().Add(5 * time.Second)
	for r0.ActiveVersion() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("readmitted replica stuck at v%d after v3", r0.ActiveVersion())
		}
		time.Sleep(time.Millisecond)
	}
	snap := met.Snapshot()
	if snap.Republishes != 1 {
		t.Fatalf("republishes = %d, want 1", snap.Republishes)
	}
	if snap.StalenessVersionsMax > 1 {
		t.Fatalf("staleness max %d > 1 across the crash cycle", snap.StalenessVersionsMax)
	}
}

// TestServingFleetOverload pins the fleet-level admission contract: a tiny
// queue under a burst sheds typed ErrOverloaded.
func TestServingFleetOverload(t *testing.T) {
	const n = 8
	vars := servingTestVars(t, n)
	met := &metrics.Serve{}
	fleet, err := NewServingFleet(ServingConfig{
		Replicas: 1,
		Spec:     servingTestSpec(4, n),
		Vars:     vars,
		MaxQueue: 2,
		// Long batch wait so the burst outruns the drain deterministically.
		BatchWait: 50 * time.Millisecond,
		Metrics:   met,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	fillServingVars(t, vars, 1)
	if _, err := fleet.Publish(); err != nil {
		t.Fatal(err)
	}

	x := make([]float32, n)
	const burst = 32
	errs := make(chan error, burst)
	for i := 0; i < burst; i++ {
		go func() {
			_, err := fleet.Query(x)
			errs <- err
		}()
	}
	shed := 0
	for i := 0; i < burst; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, serve.ErrOverloaded) {
				shed++
			} else if err != nil {
				t.Fatalf("unexpected query error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("burst queries did not resolve")
		}
	}
	if shed == 0 {
		t.Fatal("no queries shed under burst with MaxQueue=2")
	}
	if met.Snapshot().QueriesShed != int64(shed) {
		t.Fatalf("shed counter %d, want %d", met.Snapshot().QueriesShed, shed)
	}
}
