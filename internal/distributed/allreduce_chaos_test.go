package distributed

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// Chaos coverage for the collective planes: the ring's 2(N-1)-hop chains
// ride the same retry/striping/coalescing machinery as the PS edges, so
// seeded faults must retry through to the SAME bits, partitions must fail
// typed and bounded, and a mid-all-reduce crash must recover bit-
// identically.

func ringChaosMLPConfig() MLPConfig {
	return MLPConfig{Workers: 3, Batch: 8, In: 12, Hidden: 10, Classes: 4,
		LR: 0.2, Topology: "ring", BucketBytes: 256}
}

// runRingChaosTraining mirrors runPSChaosTraining for the ring plane:
// same seeds, caller-installed fault injection, per-step losses, final
// replica values, metrics, and the first step error (not fatal — the
// partition test wants it).
func runRingChaosTraining(t *testing.T, cfg Config, steps int,
	afterLaunch func(*Cluster)) ([]float32, map[string][][]float32, map[string]metrics.CommSnapshot, error) {
	t.Helper()
	mcfg := ringChaosMLPConfig()
	job, err := BuildMLPTraining(mcfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Launch(job.Builder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := job.InitAll(cl); err != nil {
		t.Fatal(err)
	}
	feeds := job.SyntheticDataset(7)
	fetches := make(map[string][]string)
	for k, task := range job.WorkerTasks {
		fetches[task] = []string{job.LossName(k)}
	}
	if afterLaunch != nil {
		afterLaunch(cl)
	}
	var losses []float32
	for iter := 0; iter < steps; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			return losses, nil, cl.MetricsSnapshot(), err
		}
		var sum float32
		for k, task := range job.WorkerTasks {
			sum += out[task][job.LossName(k)].Float32s()[0]
		}
		losses = append(losses, sum/float32(len(job.WorkerTasks)))
	}
	vars := make(map[string][][]float32)
	for _, name := range mlpLogicalVars {
		for w := 0; w < mcfg.Workers; w++ {
			vt, err := cl.VarTensor(job.VarName(name, w))
			if err != nil {
				t.Fatal(err)
			}
			vars[name] = append(vars[name], append([]float32(nil), vt.Float32s()...))
		}
	}
	return losses, vars, cl.MetricsSnapshot(), nil
}

// TestRingChaosBitIdenticalUnderFaults: a 20-step ring run under seeded
// drops, delays, and flag-first write reordering (striping is the
// reorder-hardened path) must complete through bounded retries with the
// exact bits of a fault-free run.
func TestRingChaosBitIdenticalUnderFaults(t *testing.T) {
	const steps = 20
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 8 * time.Second, Stripes: 2},
	}
	cleanLosses, cleanVars, _, err := runRingChaosTraining(t, cfg, steps, nil)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}

	var inj *chaos.Injector
	losses, vars, ms, err := runRingChaosTraining(t, cfg, steps, func(cl *Cluster) {
		inj = chaos.New(chaos.Plan{
			Seed:        23,
			DropRate:    0.08,
			DelayRate:   0.10,
			MaxDelay:    2 * time.Millisecond,
			ReorderRate: 0.05,
			Script: []chaos.Event{
				{At: 5 * time.Millisecond, A: "worker0", B: "worker1", Heal: 100 * time.Millisecond},
			},
			Metrics: cl.Server("worker0").Metrics,
		})
		inj.Install(cl.Fabric())
		inj.Start()
	})
	defer inj.Stop()
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if len(losses) != steps {
		t.Fatalf("completed %d/%d steps", len(losses), steps)
	}

	c := inj.Counters()
	if c.Injected[chaos.Drop] == 0 {
		t.Error("no transfer drops injected")
	}
	if c.Injected[chaos.Delay] == 0 {
		t.Error("no delays injected")
	}
	if c.Injected[chaos.Reorder] == 0 {
		t.Error("no write reordering injected")
	}
	if c.Injected[chaos.PartitionEvent] < 2 {
		t.Errorf("ring-edge partition fired %d events, want apply+heal", c.Injected[chaos.PartitionEvent])
	}
	var retries, timeouts int64
	for _, s := range ms {
		retries += s.Retries
		timeouts += s.Timeouts
	}
	if retries == 0 {
		t.Error("no retries recorded despite injected faults")
	}
	if timeouts != 0 {
		t.Errorf("%d edges timed out; all faults should heal within the budget", timeouts)
	}

	for i := range losses {
		if losses[i] != cleanLosses[i] {
			t.Fatalf("loss[%d] = %v under chaos, %v clean (corruption or nondeterminism)", i, losses[i], cleanLosses[i])
		}
	}
	for _, name := range mlpLogicalVars {
		for w := range vars[name] {
			for i := range vars[name][w] {
				if vars[name][w][i] != cleanVars[name][w][i] {
					t.Fatalf("%s/w%d[%d] = %v under chaos, %v clean", name, w, i,
						vars[name][w][i], cleanVars[name][w][i])
				}
			}
		}
	}
}

// TestRingNeverHealingPartitionFailsTyped: cutting one ring edge for good
// starves every segment chain crossing it; the step must fail with the
// typed edge timeout (or the executor's poll timeout), bounded by the
// configured deadlines — never hang the collective.
func TestRingNeverHealingPartitionFailsTyped(t *testing.T) {
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 2 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 1 * time.Second},
	}
	start := time.Now()
	_, _, ms, err := runRingChaosTraining(t, cfg, 20, func(cl *Cluster) {
		cl.Fabric().Partition("worker1", "worker2")
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ring training succeeded across a never-healing neighbor partition")
	}
	if !errors.Is(err, ErrEdgeTimeout) && !errors.Is(err, exec.ErrPollTimeout) {
		t.Fatalf("err = %v, want ErrEdgeTimeout or exec.ErrPollTimeout", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("step failure took %v; deadlines were 1s/2s", elapsed)
	}
	if errors.Is(err, ErrEdgeTimeout) {
		var timeouts int64
		for _, s := range ms {
			timeouts += s.Timeouts
		}
		if timeouts == 0 {
			t.Error("edge timed out but no timeout was counted")
		}
	}
	t.Logf("ring step failed as expected after %v: %v", elapsed, err)
}

// ringRecoveryRun mirrors recoveryAcceptanceRun over the ring plane: 20
// steps under Recovery.Run with striping and coalescing on, optionally
// killing a worker ~1ms into step 10 — mid-all-reduce, since every step is
// one continuous collective.
func ringRecoveryRun(t *testing.T, crashTask string) (map[int]float32, map[string][][]float32, metrics.RecoverySnapshot) {
	t.Helper()
	const steps = 20
	mcfg := ringChaosMLPConfig()
	job, err := BuildMLPTraining(mcfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Launch(job.Builder, Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer: rdma.TransferOpts{
			Deadline:          8 * time.Second,
			Stripes:           2,
			CoalesceThreshold: 256,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := job.InitAll(cl); err != nil {
		t.Fatal(err)
	}
	feeds := job.SyntheticDataset(7)
	fetches := make(map[string][]string)
	for k, task := range job.WorkerTasks {
		fetches[task] = []string{job.LossName(k)}
	}
	rec, err := cl.EnableRecovery(RecoveryConfig{
		Heartbeat:       HeartbeatConfig{Period: 5 * time.Millisecond},
		CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var inj *chaos.Injector
	if crashTask != "" {
		inj = chaos.New(chaos.Plan{
			Seed:   17,
			Script: []chaos.Event{{At: time.Millisecond, Crash: crashTask}},
			Crash:  func(task string) { _ = cl.KillTask(task) },
		})
		inj.Install(cl.Fabric())
		t.Cleanup(inj.Stop)
	}
	losses := make(map[int]float32)
	onStep := func(iter int, out map[string]map[string]*tensor.Tensor) {
		var sum float32
		for k, task := range job.WorkerTasks {
			sum += out[task][job.LossName(k)].Float32s()[0]
		}
		losses[iter] = sum / float32(len(job.WorkerTasks))
		if iter == 9 && inj != nil {
			inj.Start() // strike ~1ms into step 10
		}
	}
	if err := rec.Run(steps, feeds, fetches, onStep); err != nil {
		t.Fatalf("ring recovery run failed: %v", err)
	}
	if inj != nil {
		if n := inj.Counters().Injected[chaos.CrashEvent]; n != 1 {
			t.Errorf("crash events injected = %d, want 1", n)
		}
	}
	vars := make(map[string][][]float32)
	for _, name := range mlpLogicalVars {
		for w := 0; w < mcfg.Workers; w++ {
			vt, err := cl.VarTensor(job.VarName(name, w))
			if err != nil {
				t.Fatal(err)
			}
			vars[name] = append(vars[name], append([]float32(nil), vt.Float32s()...))
		}
	}
	return losses, vars, rec.Metrics()
}

// TestRecoveryRingCrashBitIdentical: a worker killed mid-all-reduce is
// detected by the lease detector, restarted, rolled back to the last
// checkpoint — including its replica variables, which only exist on that
// worker — and the replayed run finishes bit-identical to an uninterrupted
// one.
func TestRecoveryRingCrashBitIdentical(t *testing.T) {
	cleanLosses, cleanVars, cleanRS := ringRecoveryRun(t, "")
	if cleanRS.LeaseExpiries != 0 || cleanRS.Recoveries != 0 {
		t.Fatalf("clean run saw expiries=%d recoveries=%d", cleanRS.LeaseExpiries, cleanRS.Recoveries)
	}

	losses, vars, rs := ringRecoveryRun(t, "worker1")
	if rs.LeaseExpiries < 1 {
		t.Error("no lease expiry: crash was not detected")
	}
	if rs.Rejoins < 1 || rs.Rollbacks < 1 || rs.Recoveries < 1 {
		t.Errorf("recovery did not complete: rejoins=%d rollbacks=%d recoveries=%d",
			rs.Rejoins, rs.Rollbacks, rs.Recoveries)
	}
	for iter, l := range cleanLosses {
		if got, ok := losses[iter]; !ok || got != l {
			t.Fatalf("loss[%d] = %v after recovery, %v clean", iter, losses[iter], l)
		}
	}
	for _, name := range mlpLogicalVars {
		for w := range cleanVars[name] {
			for i := range cleanVars[name][w] {
				if vars[name][w][i] != cleanVars[name][w][i] {
					t.Fatalf("%s/w%d[%d] = %v after recovery, %v clean (replay not bit-identical)",
						name, w, i, vars[name][w][i], cleanVars[name][w][i])
				}
			}
		}
	}
}
