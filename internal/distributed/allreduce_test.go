package distributed

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// Topology parity suite: the ring and tree planes must produce the SAME
// bits as the parameter server — same per-step losses, same final weights
// — because all three reduce with one deterministic left fold in worker
// rank order (DESIGN.md §13). Every test here compares full float payloads
// with ==, never a tolerance.

// mlpLogicalVars is the MLP's logical variable set in declaration order.
var mlpLogicalVars = []string{"w1", "b1", "w2", "b2"}

// runMLPTopology builds, launches, initializes (seed 99), and steps an MLP
// job over a fixed synthetic dataset (seed 7), returning the per-step mean
// losses and, per logical variable, each replica's final values (one entry
// for PS, one per worker for the data-parallel planes).
func runMLPTopology(t testing.TB, mcfg MLPConfig, cfg Config, steps int) ([]float32, map[string][][]float32) {
	t.Helper()
	job, err := BuildMLPTraining(mcfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Launch(job.Builder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := job.InitAll(cl); err != nil {
		t.Fatal(err)
	}
	feeds := job.SyntheticDataset(7)
	fetches := make(map[string][]string)
	for k, task := range job.WorkerTasks {
		fetches[task] = []string{job.LossName(k)}
	}
	var losses []float32
	for iter := 0; iter < steps; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			t.Fatalf("%s step %d: %v", mcfg.Topology, iter, err)
		}
		var sum float32
		for k, task := range job.WorkerTasks {
			sum += out[task][job.LossName(k)].Float32s()[0]
		}
		losses = append(losses, sum/float32(len(job.WorkerTasks)))
	}
	vars := make(map[string][][]float32)
	for _, name := range mlpLogicalVars {
		replicas := 1
		if job.Topology != comm.TopologyPS && job.Topology != comm.TopologyShardedPS {
			replicas = mcfg.Workers
		}
		for w := 0; w < replicas; w++ {
			vt, err := cl.VarTensor(job.VarName(name, w))
			if err != nil {
				t.Fatal(err)
			}
			vars[name] = append(vars[name], append([]float32(nil), vt.Float32s()...))
		}
	}
	return losses, vars
}

// assertTopologyParity compares a run against the PS reference: losses
// bit-identical step for step, every replica of every variable
// bit-identical to the PS value.
func assertTopologyParity(t *testing.T, topo string,
	refLosses []float32, refVars map[string][][]float32,
	losses []float32, vars map[string][][]float32) {
	t.Helper()
	if len(losses) != len(refLosses) {
		t.Fatalf("%s: %d losses vs %d reference", topo, len(losses), len(refLosses))
	}
	for i := range losses {
		if losses[i] != refLosses[i] {
			t.Fatalf("%s: loss[%d] = %v, ps %v (reduction order diverged)", topo, i, losses[i], refLosses[i])
		}
	}
	for _, name := range mlpLogicalVars {
		ref := refVars[name][0]
		for w, rep := range vars[name] {
			if len(rep) != len(ref) {
				t.Fatalf("%s: %s replica %d has %d elems, ps %d", topo, name, w, len(rep), len(ref))
			}
			for i := range rep {
				if rep[i] != ref[i] {
					t.Fatalf("%s: %s replica %d elem %d = %v, ps %v", topo, name, w, i, rep[i], ref[i])
				}
			}
		}
	}
}

func rdmaTestConfig() Config {
	return Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 8 * time.Second},
	}
}

// TestTopologyParityMLP is the headline acceptance check: the same seed
// trains bit-identically under -topology=ps, ring, and tree.
func TestTopologyParityMLP(t *testing.T) {
	const steps = 6
	base := MLPConfig{Workers: 3, PSCount: 2, Batch: 8, In: 12, Hidden: 10, Classes: 4, LR: 0.2}

	ps := base
	ps.Topology = "ps"
	refLosses, refVars := runMLPTopology(t, ps, rdmaTestConfig(), steps)

	for _, topo := range []string{"ring", "tree"} {
		cfg := base
		cfg.Topology = topo
		cfg.BucketBytes = 256 // several buckets per step
		losses, vars := runMLPTopology(t, cfg, rdmaTestConfig(), steps)
		assertTopologyParity(t, topo, refLosses, refVars, losses, vars)
	}
}

// TestTopologyParityWorkerSweep is the property sweep of the satellite:
// worker counts 2..8 with deliberately unaligned tensor dimensions, bucket
// capacity far below the model (forcing one bucket per variable plus a
// trailing partial), and segment sizes straddling the coalesce threshold —
// all bit-identical to the PS reference.
func TestTopologyParityWorkerSweep(t *testing.T) {
	const steps = 2
	for workers := 2; workers <= 8; workers++ {
		base := MLPConfig{Workers: workers, PSCount: 2, Batch: 4,
			In: 7, Hidden: 5, Classes: 3, LR: 0.3}
		ps := base
		ps.Topology = "ps"
		refLosses, refVars := runMLPTopology(t, ps, rdmaTestConfig(), steps)
		for _, topo := range []string{"ring", "tree"} {
			cfg := base
			cfg.Topology = topo
			cfg.BucketBytes = 64
			commCfg := rdmaTestConfig()
			// Segments of w1 (7*5*4 = 140 B) coalesce below the threshold
			// or stripe above it depending on the worker count's split.
			commCfg.Transfer.Stripes = 2
			commCfg.Transfer.CoalesceThreshold = 96
			losses, vars := runMLPTopology(t, cfg, commCfg, steps)
			assertTopologyParity(t, fmt.Sprintf("%s/w=%d", topo, workers),
				refLosses, refVars, losses, vars)
		}
	}
}

// TestTopologyParityBucketSizes sweeps the bucketer across capacities that
// pack everything into one bucket, split mid-model, and isolate every
// variable — under coalesce thresholds putting the resulting edges on the
// eager, coalesced, and striped paths. Parity must hold for every combo.
func TestTopologyParityBucketSizes(t *testing.T) {
	const steps = 2
	base := MLPConfig{Workers: 3, PSCount: 1, Batch: 4, In: 8, Hidden: 8, Classes: 4, LR: 0.25}
	ps := base
	ps.Topology = "ps"
	refLosses, refVars := runMLPTopology(t, ps, rdmaTestConfig(), steps)

	for _, bucketBytes := range []int{16, 300, 1 << 20} {
		for _, coalesce := range []int{0, 128, 1 << 20} {
			cfg := base
			cfg.Topology = "ring"
			cfg.BucketBytes = bucketBytes
			commCfg := rdmaTestConfig()
			commCfg.Transfer.CoalesceThreshold = coalesce
			losses, vars := runMLPTopology(t, cfg, commCfg, steps)
			assertTopologyParity(t, fmt.Sprintf("ring/bucket=%d/coalesce=%d", bucketBytes, coalesce),
				refLosses, refVars, losses, vars)
		}
	}
}

// TestSingleGradientModelTrainsAllTopologies is the straggler regression:
// a model with exactly one gradient produces exactly one partial-fill
// bucket, which must still flush and apply under every topology. The
// graph: one 4-element variable, per-worker placeholder "gradients",
// SGD with lr 1 — after each step the variable must have decreased by the
// rank-ordered fold of the feeds.
func TestSingleGradientModelTrainsAllTopologies(t *testing.T) {
	const workers, elems, steps = 3, 4, 3
	grads := make([]*tensor.Tensor, workers)
	for w := range grads {
		grads[w] = tensor.New(tensor.Float32, elems)
		for i := range grads[w].Float32s() {
			grads[w].Float32s()[i] = float32(w+1) * (float32(i) + 0.25)
		}
	}
	// Reference fold: ((g0 + g1) + g2), applied once per step.
	want := make([]float32, elems)
	for i := 0; i < elems; i++ {
		sum := grads[0].Float32s()[i]
		for w := 1; w < workers; w++ {
			sum += grads[w].Float32s()[i]
		}
		want[i] = -float32(steps) * sum
	}

	for _, topo := range []comm.Topology{comm.TopologyPS, comm.TopologyShardedPS, comm.TopologyRing, comm.TopologyTree} {
		b := graph.NewBuilder()
		job := &comm.Job{
			Apply: func(b *graph.Builder, worker int, v, g *graph.Node) *graph.Node {
				return b.ApplySGD("apply_"+v.Name(), v, g, 1.0)
			},
		}
		vs := &comm.VarSet{Name: "v"}
		for w := 0; w < workers; w++ {
			job.Workers = append(job.Workers, fmt.Sprintf("worker%d", w))
		}
		shared := topo == comm.TopologyPS || topo == comm.TopologyShardedPS
		if shared {
			b.OnTask("ps0")
			vs.Replicas = []*graph.Node{b.Variable("v", graph.Static(tensor.Float32, elems))}
		}
		for w := 0; w < workers; w++ {
			b.OnTask(job.Workers[w])
			if !shared {
				vs.Replicas = append(vs.Replicas,
					b.Variable(fmt.Sprintf("v/w%d", w), graph.Static(tensor.Float32, elems)))
			}
			vs.Grads = append(vs.Grads,
				b.Placeholder(fmt.Sprintf("g%d", w), graph.Static(tensor.Float32, elems)))
		}
		job.Vars = []*comm.VarSet{vs}
		plane, err := comm.NewPlane(topo)
		if err != nil {
			t.Fatal(err)
		}
		if err := plane.WireUpdates(b, job, comm.Options{BucketBytes: 1 << 20}); err != nil {
			t.Fatal(err)
		}
		cl, err := Launch(b, rdmaTestConfig())
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		for _, v := range vs.Replicas {
			if err := cl.InitVariable(v.Name(), nil); err != nil {
				t.Fatal(err)
			}
		}
		feeds := make(map[string]map[string]*tensor.Tensor)
		for w, task := range job.Workers {
			feeds[task] = map[string]*tensor.Tensor{fmt.Sprintf("g%d", w): grads[w]}
		}
		for iter := 0; iter < steps; iter++ {
			if _, err := cl.Step(iter, feeds, nil); err != nil {
				t.Fatalf("%s step %d: %v", topo, iter, err)
			}
		}
		for _, v := range vs.Replicas {
			vt, err := cl.VarTensor(v.Name())
			if err != nil {
				t.Fatal(err)
			}
			for i, got := range vt.Float32s() {
				if got != want[i] {
					t.Fatalf("%s: %s[%d] = %v, want %v", topo, v.Name(), i, got, want[i])
				}
			}
		}
		cl.Close()
	}
}

// TestRingCoalescePhaseSeparation proves the deadlock fix stays load-
// bearing: with a coalesce threshold swallowing every collective edge, the
// ring's reduce and broadcast hops between the same neighbor pair must land
// in DIFFERENT coalesce groups (a shared batch only flushes when all
// members stage, and broadcast transitively waits on reduce — a cycle).
func TestRingCoalescePhaseSeparation(t *testing.T) {
	cfg := MLPConfig{Workers: 2, Batch: 4, In: 6, Hidden: 4, Classes: 3, LR: 0.1,
		Topology: "ring", BucketBytes: 1 << 20}
	job, err := BuildMLPTraining(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	commCfg := rdmaTestConfig()
	commCfg.Transfer.CoalesceThreshold = 1 << 20 // everything coalesces
	cl, err := Launch(job.Builder, commCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := job.InitAll(cl); err != nil {
		t.Fatal(err)
	}
	feeds := job.SyntheticDataset(7)
	done := make(chan error, 1)
	go func() {
		_, err := cl.Step(0, feeds, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coalesced ring step: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("coalesced ring step deadlocked: reduce and broadcast share a batch")
	}
}

// TestMLPJobBucketLayout pins the builder's bucket metadata: backward
// order (b2 first), straggler partial bucket present, every gradient
// covered exactly once.
func TestMLPJobBucketLayout(t *testing.T) {
	cfg := MLPConfig{Workers: 2, Batch: 4, In: 7, Hidden: 5, Classes: 3, LR: 0.1,
		Topology: "ring", BucketBytes: 64}
	job, err := BuildMLPTraining(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Buckets) == 0 {
		t.Fatal("no buckets on a data-parallel job")
	}
	if first := job.Buckets[0].Members[0].Name; first != "b2" {
		t.Fatalf("first bucketed gradient is %q, want b2 (backward order)", first)
	}
	seen := map[string]int{}
	var total int
	for _, bk := range job.Buckets {
		for _, m := range bk.Members {
			seen[m.Name]++
			total += m.Elems
		}
	}
	wantElems := cfg.In*cfg.Hidden + cfg.Hidden + cfg.Hidden*cfg.Classes + cfg.Classes
	if total != wantElems {
		t.Fatalf("buckets cover %d elems, want %d", total, wantElems)
	}
	for _, name := range mlpLogicalVars {
		if seen[name] != 1 {
			t.Fatalf("gradient %s bucketed %d times", name, seen[name])
		}
	}
	// Partial-fill buckets survive (the straggler rule): with this layout
	// b2 (12 B) closes alone because w2 would overflow the 64 B capacity —
	// an under-filled bucket that must still be emitted and wired.
	var sawPartial bool
	for _, bk := range job.Buckets {
		if bk.ByteSize() < cfg.BucketBytes {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no partial-fill bucket emitted; straggler flush has no coverage")
	}
}
