package distributed

import (
	"errors"
	"testing"
	"time"

	"repro/internal/analyzer"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/rpc"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// launchCoalescedCluster builds the 2-worker/1-PS training so both of a
// worker's gradient edges land in one coalesce group, and returns a send
// member of a multi-member group on worker0.
func launchCoalescedCluster(t *testing.T) (*Cluster, *Env, *coalSendEdge) {
	t.Helper()
	b, _ := buildPSTraining(t, 2, 1, 8, 12, 4, 0.2)
	cl, err := Launch(b, Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer: rdma.TransferOpts{
			Deadline:          8 * time.Second,
			CoalesceThreshold: 256,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	env := cl.Server("worker0").Env
	env.mu.Lock()
	var member *coalSendEdge
	for _, m := range env.coalSendEdges {
		if m.group.members >= 2 {
			member = m
			break
		}
	}
	env.mu.Unlock()
	if member == nil {
		t.Fatal("no multi-member coalesce send group on worker0; topology changed?")
	}
	return cl, env, member
}

// memberCtx builds the minimal kernel context a coalesced send member needs.
func memberCtx(t *testing.T, env *Env, m *coalSendEdge, iter int, canceled func() bool) *graph.Context {
	t.Helper()
	in := tensor.New(m.spec.Sig.DType, m.spec.Sig.Shape...)
	return &graph.Context{
		Iter:     iter,
		Inputs:   []*tensor.Tensor{in},
		Env:      env,
		Canceled: canceled,
	}
}

// A coalesced send dispatched after its iteration died must complete with
// an error instead of staging into a batch nobody will ever flush — the
// executor's quiesce drain waits on exactly that completion.
func TestCoalescedSendFailsWhenIterationCanceled(t *testing.T) {
	_, env, m := launchCoalescedCluster(t)
	op := &coalescedSendOp{spec: m.spec}
	ctx := memberCtx(t, env, m, 100, func() bool { return true })
	errCh := make(chan error, 1)
	op.ComputeAsync(ctx, func(err error) { errCh <- err })
	select {
	case err := <-errCh:
		if !errors.Is(err, rdma.ErrCanceled) {
			t.Fatalf("err = %v, want rdma.ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled coalesced send never completed")
	}
	m.group.mu.Lock()
	staged, waiters := m.group.staged, len(m.group.waiters)
	m.group.mu.Unlock()
	if staged != 0 || waiters != 0 {
		t.Errorf("group left staged=%d waiters=%d after cancel, want 0/0", staged, waiters)
	}
}

// A member that staged while the run was healthy parks its completion as a
// group waiter; when the run then dies before the batch fills, FailPending
// (called by exec.Run on a failed run) must release it. Regression test for
// the quiesce-drain deadlock: without the sweep, Run — and Step and
// recovery behind it — blocked forever on the parked waiter.
func TestEnvFailPendingReleasesStagedWaiter(t *testing.T) {
	_, env, m := launchCoalescedCluster(t)
	op := &coalescedSendOp{spec: m.spec}
	ctx := memberCtx(t, env, m, 100, func() bool { return false })
	errCh := make(chan error, 1)
	op.ComputeAsync(ctx, func(err error) { errCh <- err })
	// Wait until the staging goroutine has parked the waiter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.group.mu.Lock()
		parked := len(m.group.waiters) == 1
		m.group.mu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("member never staged")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-errCh:
		t.Fatalf("waiter completed before the batch filled or failed: %v", err)
	default:
	}
	env.FailPending(errors.New("step died"))
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("FailPending completed the waiter without an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FailPending did not release the staged waiter")
	}
	m.group.mu.Lock()
	staged := m.group.staged
	m.group.mu.Unlock()
	if staged != 0 {
		t.Errorf("group staged = %d after FailPending, want 0 (batch reset)", staged)
	}
}

// A push queued by a dead iteration must be discarded by the receiver's
// poll, not delivered to (or poison) the live iteration.
func TestRPCRecvDiscardsStalePush(t *testing.T) {
	env := newEnv("worker0", GRPCTCP, nil, &metrics.Comm{}, nil, nil)
	mb := env.mailbox("edge")
	op := &rpcRecvOp{spec: analyzer.EdgeSpec{Key: "edge", Sig: graph.Static(tensor.Float32, 1)}}
	ctx := &graph.Context{Iter: 1, Env: env} // live iteration expects seq 2

	stale := tensor.New(tensor.Float32, 1)
	mb.ch <- mailboxItem{seq: 9, t: stale} // e.g. aborted pre-rollback iteration
	ready, err := op.Poll(ctx)
	if err != nil {
		t.Fatalf("stale push poisoned the poll: %v", err)
	}
	if ready {
		t.Fatal("stale push was delivered as live data")
	}

	fresh := tensor.New(tensor.Float32, 1)
	fresh.Float32s()[0] = 42
	mb.ch <- mailboxItem{seq: 2, t: fresh}
	ready, err = op.Poll(ctx)
	if err != nil || !ready {
		t.Fatalf("live push not delivered: ready=%v err=%v", ready, err)
	}
	if err := op.Compute(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Output.Float32s()[0]; got != 42 {
		t.Errorf("delivered %v, want the live iteration's 42", got)
	}
}

// An RPC send dispatched after its iteration died must not push at all:
// the message would sit in the receiver's mailbox and masquerade as a later
// iteration's tensor.
func TestRPCSendSkipsPushWhenCanceled(t *testing.T) {
	net := transport.NewPipeNetwork().Network()
	l, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(l)
	calls := make(chan struct{}, 1)
	srv.Register(pushMethod, func(req []byte) ([]byte, error) {
		calls <- struct{}{}
		return nil, nil
	})
	srv.Start()
	defer srv.Close()
	client, err := rpc.Dial(net, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	env := newEnv("worker0", GRPCTCP, nil, &metrics.Comm{}, nil, nil)
	env.rpcClients["ps0"] = client
	spec := analyzer.EdgeSpec{Key: "edge", DstTask: "ps0", Sig: graph.Static(tensor.Float32, 1)}
	op := &rpcSendOp{spec: spec}
	in := tensor.New(tensor.Float32, 1)
	ctx := &graph.Context{
		Iter:     3,
		Inputs:   []*tensor.Tensor{in},
		Env:      env,
		Canceled: func() bool { return true },
	}
	errCh := make(chan error, 1)
	op.ComputeAsync(ctx, func(err error) { errCh <- err })
	select {
	case err := <-errCh:
		if !errors.Is(err, rdma.ErrCanceled) {
			t.Fatalf("err = %v, want rdma.ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled send never completed")
	}
	select {
	case <-calls:
		t.Fatal("canceled send still pushed to the receiver")
	case <-time.After(100 * time.Millisecond):
	}
}
