package distributed

import (
	"io"
	"sort"

	"repro/internal/exec"
)

// Cluster-level checkpointing: variables live on different servers but have
// globally unique names, so a checkpoint is the union of the per-server
// stores. Restore happens in place (the per-server tensors keep their
// registered-memory placement, preserving the §3.2 address stability).

// SaveCheckpoint writes every server's variables to w.
func (c *Cluster) SaveCheckpoint(w io.Writer) error {
	merged, err := c.mergedStore()
	if err != nil {
		return err
	}
	return merged.Save(w)
}

// LoadCheckpoint restores every variable in place from r. All checkpointed
// variables must exist on some server with matching dtype and size.
func (c *Cluster) LoadCheckpoint(r io.Reader) error {
	merged, err := c.mergedStore()
	if err != nil {
		return err
	}
	return merged.Load(r)
}

// mergedStore builds a store aliasing every server's variable tensors (so
// Save sees them all and Load writes through to them).
func (c *Cluster) mergedStore() (*exec.VarStore, error) {
	merged := exec.NewVarStore()
	srvs := c.serversSnapshot()
	tasks := make([]string, 0, len(srvs))
	for t := range srvs {
		tasks = append(tasks, t)
	}
	sort.Strings(tasks)
	for _, task := range tasks {
		store := srvs[task].VarStore
		for _, name := range store.Names() {
			t, err := store.VarTensor(name)
			if err != nil {
				return nil, err
			}
			if err := merged.Create(name, t); err != nil {
				return nil, err
			}
		}
	}
	return merged, nil
}
