package distributed

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// buildModelParallel splits a 2-layer network across two servers: layer 1
// (and its weights) on serverA, layer 2 plus the loss on serverB —
// activations flow forward across the cut, their gradients flow back
// (Figure 2's model-parallel placement).
func buildModelParallel(t *testing.T) (*graph.Builder, []*graph.Node) {
	t.Helper()
	const batch, in, hid, classes = 4, 8, 6, 3
	b := graph.NewBuilder()
	b.OnTask("serverA")
	x := b.Placeholder("x", graph.Static(tensor.Float32, batch, in))
	w1 := b.Variable("w1", graph.Static(tensor.Float32, in, hid))
	h := b.Tanh("h", b.MatMul("mm1", x, w1))
	b.OnTask("serverB")
	w2 := b.Variable("w2", graph.Static(tensor.Float32, hid, classes))
	labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
	loss := b.SoftmaxXent("loss", b.MatMul("mm2", h, w2), labels)
	grads, err := graph.Gradients(b, loss, []*graph.Node{w1, w2})
	if err != nil {
		t.Fatal(err)
	}
	// Each variable updates on its own server.
	b.OnTask("serverA")
	b.ApplySGD("apply_w1", w1, grads[w1], 0.3)
	b.OnTask("serverB")
	b.ApplySGD("apply_w2", w2, grads[w2], 0.3)
	return b, []*graph.Node{w1, w2}
}

func TestModelParallelTraining(t *testing.T) {
	b, _ := buildModelParallel(t)
	cl, err := Launch(b, Config{Kind: RDMA, ArenaBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The cut must carry tensors in both directions: the activation
	// forward (A->B) and its gradient backward (B->A).
	var fwd, bwd bool
	for _, e := range cl.Result().Edges {
		if e.SrcTask == "serverA" && e.DstTask == "serverB" {
			fwd = true
		}
		if e.SrcTask == "serverB" && e.DstTask == "serverA" {
			bwd = true
		}
	}
	if !fwd || !bwd {
		t.Fatalf("expected edges both ways across the cut, got %+v", cl.Result().Edges)
	}

	rng := rand.New(rand.NewSource(21))
	if err := cl.InitVariable("w1", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("w2", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(tensor.Float32, 4, 8)
	tensor.RandomUniform(x, rng, 1)
	labels := tensor.New(tensor.Int32, 4)
	tensor.RandomLabels(labels, rng, 3)
	feeds := map[string]map[string]*tensor.Tensor{
		"serverA": {"x": x},
		"serverB": {"labels": labels},
	}
	fetches := map[string][]string{"serverB": {"loss"}}
	var first, last float32
	for iter := 0; iter < 25; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			t.Fatal(err)
		}
		l := out["serverB"]["loss"].Float32s()[0]
		if iter == 0 {
			first = l
		}
		last = l
	}
	if last > first*0.7 {
		t.Errorf("model-parallel training did not converge: %v -> %v", first, last)
	}
}

func TestPartitionedFabricFailsStep(t *testing.T) {
	b, _ := buildModelParallel(t)
	cl, err := Launch(b, Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.InitVariable("w1", nil); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("w2", nil); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(tensor.Float32, 4, 8)
	labels := tensor.New(tensor.Int32, 4)
	feeds := map[string]map[string]*tensor.Tensor{
		"serverA": {"x": x},
		"serverB": {"labels": labels},
	}

	// Healthy step first.
	if _, err := cl.Step(0, feeds, nil); err != nil {
		t.Fatal(err)
	}
	// Sever the fabric: the step must fail (poll timeout or unreachable),
	// not hang.
	cl.Fabric().Partition("serverA", "serverB")
	_, err = cl.Step(1, feeds, nil)
	if err == nil {
		t.Fatal("step succeeded across a partitioned fabric")
	}
	if !errors.Is(err, exec.ErrPollTimeout) && !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unexpected failure mode: %v", err)
	}
	// Heal and recover.
	cl.Fabric().Heal("serverA", "serverB")
	if _, err := cl.Step(2, feeds, nil); err != nil {
		t.Fatalf("step after heal: %v", err)
	}
}

func TestClusterCheckpointRoundtrip(t *testing.T) {
	losses, cl := trainCluster(t, RDMA, 2, 5)
	defer cl.Close()
	_ = losses

	var snap bytes.Buffer
	if err := cl.SaveCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	wBefore, err := cl.VarTensor("w")
	if err != nil {
		t.Fatal(err)
	}
	saved := wBefore.Clone()
	savedPtr := &wBefore.Bytes()[0]

	// Perturb, restore, verify in-place equality.
	wBefore.Fill(123)
	if err := cl.LoadCheckpoint(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	wAfter, _ := cl.VarTensor("w")
	if !wAfter.Equal(saved) {
		t.Error("checkpoint restore did not recover the variable")
	}
	if &wAfter.Bytes()[0] != savedPtr {
		t.Error("restore must preserve the registered-memory placement")
	}
}

func TestModelParallelMatchesSingleServer(t *testing.T) {
	// The same network trained model-parallel and single-server must
	// produce identical losses (the partition changes placement, not math).
	runLosses := func(split bool) []float32 {
		const batch, in, hid, classes = 4, 8, 6, 3
		b := graph.NewBuilder()
		taskA, taskB := "only", "only"
		if split {
			taskA, taskB = "serverA", "serverB"
		}
		b.OnTask(taskA)
		x := b.Placeholder("x", graph.Static(tensor.Float32, batch, in))
		w1 := b.Variable("w1", graph.Static(tensor.Float32, in, hid))
		h := b.Tanh("h", b.MatMul("mm1", x, w1))
		b.OnTask(taskB)
		w2 := b.Variable("w2", graph.Static(tensor.Float32, hid, classes))
		labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
		loss := b.SoftmaxXent("loss", b.MatMul("mm2", h, w2), labels)
		grads, err := graph.Gradients(b, loss, []*graph.Node{w1, w2})
		if err != nil {
			t.Fatal(err)
		}
		b.OnTask(taskA)
		b.ApplySGD("apply_w1", w1, grads[w1], 0.3)
		b.OnTask(taskB)
		b.ApplySGD("apply_w2", w2, grads[w2], 0.3)

		cl, err := Launch(b, Config{Kind: RDMA, ArenaBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		rng := rand.New(rand.NewSource(33))
		if err := cl.InitVariable("w1", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
			t.Fatal(err)
		}
		if err := cl.InitVariable("w2", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
			t.Fatal(err)
		}
		dataRng := rand.New(rand.NewSource(44))
		x0 := tensor.New(tensor.Float32, batch, in)
		tensor.RandomUniform(x0, dataRng, 1)
		l0 := tensor.New(tensor.Int32, batch)
		tensor.RandomLabels(l0, dataRng, classes)
		feeds := map[string]map[string]*tensor.Tensor{
			taskA: {"x": x0},
		}
		if split {
			feeds[taskB] = map[string]*tensor.Tensor{"labels": l0}
		} else {
			feeds[taskA]["labels"] = l0
		}
		var out []float32
		for iter := 0; iter < 10; iter++ {
			res, err := cl.Step(iter, feeds, map[string][]string{taskB: {"loss"}})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res[taskB]["loss"].Float32s()[0])
		}
		return out
	}
	single := runLosses(false)
	parallel := runLosses(true)
	for i := range single {
		d := single[i] - parallel[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-5 {
			t.Fatalf("iter %d: single %v vs model-parallel %v", i, single[i], parallel[i])
		}
	}
}
