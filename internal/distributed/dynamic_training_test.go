package distributed

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// TestDynamicModelParallelTraining trains a layer-split model whose batch
// size varies per iteration: the activation crossing serverA→serverB and
// its gradient crossing back are both dynamically shaped, so the §3.3
// protocol runs in both directions under real training — metadata writes,
// one-sided reads, arena allocation, and ack-gated scratch reuse, every
// iteration with a different payload size. This is the wide-and-deep /
// variable-length-NLP scenario §3.3 motivates.
func TestDynamicModelParallelTraining(t *testing.T) {
	const in, hidden, classes = 6, 8, 3
	b := graph.NewBuilder()
	b.OnTask("serverA")
	x := b.Placeholder("x", graph.Dyn(tensor.Float32, -1, in))
	w1 := b.Variable("w1", graph.Static(tensor.Float32, in, hidden))
	h := b.Tanh("h", b.MatMul("mm1", x, w1))
	b.OnTask("serverB")
	w2 := b.Variable("w2", graph.Static(tensor.Float32, hidden, classes))
	labels := b.Placeholder("labels", graph.Dyn(tensor.Int32, -1))
	loss := b.SoftmaxXent("loss", b.MatMul("mm2", h, w2), labels)
	grads, err := graph.Gradients(b, loss, []*graph.Node{w1, w2})
	if err != nil {
		t.Fatal(err)
	}
	b.OnTask("serverA")
	b.ApplySGD("apply_w1", w1, grads[w1], 0.4)
	b.OnTask("serverB")
	b.ApplySGD("apply_w2", w2, grads[w2], 0.4)

	cl, err := Launch(b, Config{Kind: RDMA, ArenaBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Both cut directions must use the dynamic protocol.
	dyn := cl.Result().DynamicEdges()
	var fwd, bwd bool
	for _, e := range dyn {
		if e.SrcTask == "serverA" && e.DstTask == "serverB" {
			fwd = true
		}
		if e.SrcTask == "serverB" && e.DstTask == "serverA" {
			bwd = true
		}
	}
	if !fwd || !bwd {
		t.Fatalf("expected dynamic edges both ways, got %+v", cl.Result().Edges)
	}

	rng := rand.New(rand.NewSource(77))
	if err := cl.InitVariable("w1", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("w2", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}

	// A fixed learnable mapping evaluated on varying-size batches drawn
	// from a fixed pool, so losses still trend down.
	const pool = 32
	poolX := tensor.New(tensor.Float32, pool, in)
	tensor.RandomUniform(poolX, rng, 1)
	poolY := tensor.New(tensor.Int32, pool)
	tensor.RandomLabels(poolY, rng, classes)

	dataRng := rand.New(rand.NewSource(78))
	var first, last float32
	const iters = 40
	for iter := 0; iter < iters; iter++ {
		batch := 2 + dataRng.Intn(9) // 2..10, varies per iteration
		xs := tensor.New(tensor.Float32, batch, in)
		ls := tensor.New(tensor.Int32, batch)
		for i := 0; i < batch; i++ {
			k := dataRng.Intn(pool)
			copy(xs.Float32s()[i*in:(i+1)*in], poolX.Float32s()[k*in:(k+1)*in])
			ls.Int32s()[i] = poolY.Int32s()[k]
		}
		out, err := cl.Step(iter,
			map[string]map[string]*tensor.Tensor{
				"serverA": {"x": xs},
				"serverB": {"labels": ls},
			},
			map[string][]string{"serverB": {"loss"}})
		if err != nil {
			t.Fatalf("iteration %d (batch %d): %v", iter, batch, err)
		}
		l := out["serverB"]["loss"].Float32s()[0]
		if iter == 0 {
			first = l
		}
		last = l
	}
	if last > first*0.8 {
		t.Errorf("dynamic model-parallel training did not converge: %v -> %v", first, last)
	}
	// Both servers performed dynamic transfers; after tracing, the sends
	// are zero-copy out of the registered arena.
	for _, task := range []string{"serverA", "serverB"} {
		m := cl.Server(task).Metrics.Snapshot()
		if m.DynTransfers < iters-1 {
			t.Errorf("%s: only %d dynamic transfers over %d iterations", task, m.DynTransfers, iters)
		}
		if m.ZeroCopyOps == 0 {
			t.Errorf("%s: no zero-copy dynamic sends recorded", task)
		}
	}
}
