// Package distributed runs data-flow graphs across an in-process cluster of
// servers in the parameter-server architecture, with all four communication
// mechanisms the paper evaluates:
//
//	GRPCTCP      — the RPC library over loopback TCP (TensorFlow's default).
//	GRPCRDMA     — the same RPC library over the RDMA ring transport
//	               (TensorFlow r1.x's RDMA-under-gRPC, with bounce buffers,
//	               fragmentation, and in-library copies).
//	RDMA         — the paper's contribution: zero-copy transfer through the
//	               device interface, static placement (§3.2) or dynamic
//	               allocation (§3.3) chosen per edge by graph analysis, with
//	               allocation-site tracing eliminating sender-side copies.
//	RDMACopy     — the ablation of §5.1/Figure 12: the same device transfer
//	               but with graph analysis disabled, so every send first
//	               copies the tensor into a registered staging buffer.
package distributed

// Kind selects the communication mechanism.
type Kind int

// The four mechanisms of the evaluation.
const (
	GRPCTCP Kind = iota
	GRPCRDMA
	RDMA
	RDMACopy
)

func (k Kind) String() string {
	switch k {
	case GRPCTCP:
		return "gRPC.TCP"
	case GRPCRDMA:
		return "gRPC.RDMA"
	case RDMA:
		return "RDMA.zerocp"
	case RDMACopy:
		return "RDMA.cp"
	default:
		return "unknown"
	}
}

// UsesRPC reports whether the mechanism moves tensors through the RPC
// library.
func (k Kind) UsesRPC() bool { return k == GRPCTCP || k == GRPCRDMA }

// ZeroCopy reports whether graph analysis (staging placement and
// allocation-site tracing) is enabled.
func (k Kind) ZeroCopy() bool { return k == RDMA }
