package distributed

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// TestArenaStableOverManyDynamicIterations: the dynamic protocol allocates
// a fresh receive buffer per iteration and the sender promotes its payload
// sites into the arena; the deferred-free logic must keep arena occupancy
// bounded over a long run (leaks here would exhaust registered memory on
// real hardware).
func TestArenaStableOverManyDynamicIterations(t *testing.T) {
	b := graph.NewBuilder()
	b.OnTask("worker0")
	x := b.Placeholder("x", graph.Dyn(tensor.Float32, -1, 32))
	act := b.Tanh("act", b.Scale("scale", x, 0.5))
	b.OnTask("ps0")
	b.ReduceMax("sink", act)
	cl, err := Launch(b, Config{Kind: RDMA, ArenaBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const iters = 200
	var peakWorker, peakPS int
	for iter := 0; iter < iters; iter++ {
		batch := 1 + (iter*7)%23 // varying shapes every iteration
		xs := tensor.New(tensor.Float32, batch, 32)
		xs.Fill(1)
		if _, err := cl.Step(iter,
			map[string]map[string]*tensor.Tensor{"worker0": {"x": xs}},
			map[string][]string{"ps0": {"sink"}}); err != nil {
			t.Fatalf("iteration %d: %v", iter, err)
		}
		if u := cl.Server("worker0").Arena.Stats().InUse; u > peakWorker {
			peakWorker = u
		}
		if u := cl.Server("ps0").Arena.Stats().InUse; u > peakPS {
			peakPS = u
		}
	}
	// Bound: a handful of in-flight buffers of the largest batch
	// (23x32 float32 ≈ 3 KB), not hundreds.
	const bound = 64 << 10
	if peakWorker > bound {
		t.Errorf("worker arena peaked at %d bytes (leak?)", peakWorker)
	}
	if peakPS > bound {
		t.Errorf("ps arena peaked at %d bytes (leak?)", peakPS)
	}
	// After the run, occupancy must be near zero (only the last couple of
	// iterations' buffers may still be deferred).
	if u := cl.Server("ps0").Arena.Stats().InUse; u > 16<<10 {
		t.Errorf("ps arena still holds %d bytes after the run", u)
	}
}

// TestRegionCountBounded: the §3.4 argument for arena registration —
// the number of registered regions must not grow with iterations.
func TestRegionCountBounded(t *testing.T) {
	losses, cl := trainCluster(t, RDMA, 2, 3)
	defer cl.Close()
	_ = losses
	before := cl.Server("worker0").Dev.RegionCount()
	// Burn more iterations on a fresh identical cluster and compare.
	losses2, cl2 := trainCluster(t, RDMA, 2, 12)
	defer cl2.Close()
	_ = losses2
	after := cl2.Server("worker0").Dev.RegionCount()
	if after != before {
		t.Errorf("region count grew with iterations: %d -> %d", before, after)
	}
}
