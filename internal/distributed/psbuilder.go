package distributed

import (
	"fmt"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// MLPConfig describes a data-parallel MLP classifier training job. The
// communication plane is selected by Topology:
//
//   - "ps" (default): the paper's Figure-3 layout — shared variables live
//     on the PS tasks round-robin, workers push gradients, the PS sums
//     them and applies the optimizer, workers pull weights back.
//   - "sharded-ps": the PS layout with gradient buckets partitioned
//     across PSShards shard tasks by the deterministic bucket->shard map
//     (comm.BuildShardMap); each variable lives on its bucket's shard,
//     workers push packed buckets, each shard folds and applies only its
//     partition. AggGroup > 1 adds two-level hierarchical aggregation.
//   - "ring"/"tree": pure data-parallel all-reduce — every worker holds a
//     replica of each variable (identically initialized), gradients are
//     bucketed and all-reduced over the selected collective, and every
//     worker applies the optimizer locally. PSCount is ignored.
//
// All topologies reduce in the same deterministic order, so runs from the
// same seed are bit-identical across planes (DESIGN.md §13-14).
type MLPConfig struct {
	Workers int
	PSCount int
	Batch   int
	In      int
	Hidden  int
	Classes int
	LR      float32
	// Optimizer selects "sgd" (default), "momentum" (0.9), or "adam".
	Optimizer string
	// Topology selects the communication plane: "ps" (default), "ring",
	// or "tree".
	Topology string
	// BucketBytes caps a gradient bucket for the all-reduce planes
	// (<=0 selects comm.DefaultBucketBytes). Ignored for "ps".
	BucketBytes int
	// Segments is the ring's per-bucket segment count (<=0 selects one
	// segment per worker). Ignored for "ps" and "tree".
	Segments int
	// PSShards is the "sharded-ps" plane's shard-task count (<=0 selects
	// one shard). Ignored by the other topologies.
	PSShards int
	// AggGroup enables the "sharded-ps" plane's two-level hierarchical
	// aggregation (contiguous rank blocks of this size fold on a local
	// aggregator; <=1 folds flat on the shard tasks).
	AggGroup int
}

// VarInit pairs a variable name with its initializer.
type VarInit struct {
	Name string
	Init func(*tensor.Tensor)
}

// MLPJob is the built graph plus everything needed to run it.
type MLPJob struct {
	Builder     *graph.Builder
	WorkerTasks []string
	VarInits    []VarInit
	// LossName returns worker k's loss fetch target.
	LossName func(worker int) string
	// FeedNames returns worker k's input/label placeholder names.
	FeedNames func(worker int) (x, labels string)
	Config    MLPConfig
	// Topology is the parsed communication plane.
	Topology comm.Topology
	// Buckets is the gradient bucket layout the bucketing planes wired
	// (nil for the PS plane).
	Buckets []comm.Bucket
	// ShardMap is the sharded-PS bucket->shard assignment (nil for the
	// other planes).
	ShardMap *comm.ShardMap
}

// VarName maps a logical variable ("w1") to the concrete node name for
// one worker: the shared PS variable, or that worker's replica.
func (j *MLPJob) VarName(logical string, worker int) string {
	if j.Topology == comm.TopologyPS || j.Topology == comm.TopologyShardedPS {
		return logical
	}
	return replicaName(logical, worker)
}

func replicaName(logical string, worker int) string {
	return fmt.Sprintf("%s/w%d", logical, worker)
}

// lookup finds a node by name among the builder's nodes.
func lookup(b *graph.Builder, name string) (*graph.Node, error) {
	for _, n := range b.Nodes() {
		if n.Name() == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("%w: node %q not found", ErrSetup, name)
}

// mlpVarSpec is one logical trainable variable of the MLP, in declaration
// order (the order the PS layout assigns tasks and draws initializers).
type mlpVarSpec struct {
	name   string
	sig    graph.Sig
	glorot bool
}

func mlpVarSpecs(cfg MLPConfig) []mlpVarSpec {
	return []mlpVarSpec{
		{name: "w1", sig: graph.Static(tensor.Float32, cfg.In, cfg.Hidden), glorot: true},
		{name: "b1", sig: graph.Static(tensor.Float32, cfg.Hidden)},
		{name: "w2", sig: graph.Static(tensor.Float32, cfg.Hidden, cfg.Classes), glorot: true},
		{name: "b2", sig: graph.Static(tensor.Float32, cfg.Classes)},
	}
}

// optimizerApply returns the plane Apply callback for the configured
// optimizer. The node name follows the replica ("apply_w1",
// "apply_w1/w2"), so it is unique per task.
func optimizerApply(cfg MLPConfig) (comm.ApplyFn, error) {
	switch cfg.Optimizer {
	case "", "sgd":
		return func(b *graph.Builder, _ int, v, g *graph.Node) *graph.Node {
			return b.ApplySGD("apply_"+v.Name(), v, g, cfg.LR)
		}, nil
	case "momentum":
		return func(b *graph.Builder, _ int, v, g *graph.Node) *graph.Node {
			return b.ApplyMomentum("apply_"+v.Name(), v, g, cfg.LR, 0.9)
		}, nil
	case "adam":
		return func(b *graph.Builder, _ int, v, g *graph.Node) *graph.Node {
			return b.ApplyAdam("apply_"+v.Name(), v, g, cfg.LR)
		}, nil
	default:
		return nil, fmt.Errorf("%w: unknown optimizer %q", ErrSetup, cfg.Optimizer)
	}
}

// addWorkerForward builds worker k's placeholders, forward pass and loss
// against the given parameter nodes (shared PS variables or the worker's
// replicas, in mlpVarSpecs order: w1, b1, w2, b2). Node names are
// identical across topologies so runs stay comparable.
func addWorkerForward(b *graph.Builder, cfg MLPConfig, k int, params []*graph.Node) *graph.Node {
	w1, b1, w2, b2 := params[0], params[1], params[2], params[3]
	x := b.Placeholder(fmt.Sprintf("x%d", k), graph.Static(tensor.Float32, cfg.Batch, cfg.In))
	labels := b.Placeholder(fmt.Sprintf("labels%d", k), graph.Static(tensor.Int32, cfg.Batch))
	h := b.ReLU(fmt.Sprintf("h%d", k),
		b.BiasAdd(fmt.Sprintf("z1_%d", k), b.MatMul(fmt.Sprintf("mm1_%d", k), x, w1), b1))
	logits := b.BiasAdd(fmt.Sprintf("logits%d", k),
		b.MatMul(fmt.Sprintf("mm2_%d", k), h, w2), b2)
	return b.SoftmaxXent(fmt.Sprintf("loss%d", k), logits, labels)
}

// pruneToTraining drops dangling gradient nodes (e.g. toward
// placeholders): keep the losses and the stateful optimizer updates.
func pruneToTraining(b *graph.Builder, workers int) error {
	keep := b.StatefulNodes()
	for k := 0; k < workers; k++ {
		n, err := lookup(b, fmt.Sprintf("loss%d", k))
		if err != nil {
			return err
		}
		keep = append(keep, n)
	}
	b.Prune(keep...)
	return b.Err()
}

// BuildMLPTraining constructs the job over the configured communication
// plane. Initialize variables with Cluster.InitVariable using the
// returned VarInits after Launch.
func BuildMLPTraining(cfg MLPConfig, seed int64) (*MLPJob, error) {
	topo, err := comm.ParseTopology(cfg.Topology)
	if err != nil {
		return nil, err
	}
	if topo == comm.TopologyPS {
		return buildPSMLP(cfg, seed)
	}
	if topo == comm.TopologyShardedPS {
		return buildShardedPSMLP(cfg, seed)
	}
	return buildAllReduceMLP(cfg, topo, seed)
}

// buildPSMLP is the parameter-server layout, wired through the PS plane.
// Node names (gsum_*, apply_*) match the pre-plane builder exactly.
func buildPSMLP(cfg MLPConfig, seed int64) (*MLPJob, error) {
	if cfg.Workers < 1 || cfg.PSCount < 1 {
		return nil, fmt.Errorf("%w: need at least one worker and one ps", ErrSetup)
	}
	apply, err := optimizerApply(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	psTask := func(i int) string { return fmt.Sprintf("ps%d", i%cfg.PSCount) }

	specs := mlpVarSpecs(cfg)
	vars := make([]*graph.Node, len(specs))
	for i, s := range specs {
		b.OnTask(psTask(i))
		vars[i] = b.Variable(s.name, s.sig)
	}

	grads := make(map[*graph.Node][]*graph.Node)
	var workerTasks []string
	for k := 0; k < cfg.Workers; k++ {
		task := fmt.Sprintf("worker%d", k)
		workerTasks = append(workerTasks, task)
		b.OnTask(task)
		loss := addWorkerForward(b, cfg, k, vars)
		g, err := graph.Gradients(b, loss, vars)
		if err != nil {
			return nil, err
		}
		for _, v := range vars {
			grads[v] = append(grads[v], g[v])
		}
	}

	job := &comm.Job{Workers: workerTasks, Apply: apply}
	for _, v := range vars {
		job.Vars = append(job.Vars, &comm.VarSet{
			Name: v.Name(), Replicas: []*graph.Node{v}, Grads: grads[v]})
	}
	plane, err := comm.NewPlane(comm.TopologyPS)
	if err != nil {
		return nil, err
	}
	if err := plane.WireUpdates(b, job, comm.Options{}); err != nil {
		return nil, err
	}
	if err := pruneToTraining(b, cfg.Workers); err != nil {
		return nil, err
	}

	inits := []VarInit{
		{Name: "w1", Init: func(t *tensor.Tensor) { tensor.GlorotInit(t, rng) }},
		{Name: "b1", Init: nil},
		{Name: "w2", Init: func(t *tensor.Tensor) { tensor.GlorotInit(t, rng) }},
		{Name: "b2", Init: nil},
	}
	return &MLPJob{
		Builder:     b,
		WorkerTasks: workerTasks,
		VarInits:    inits,
		LossName:    func(k int) string { return fmt.Sprintf("loss%d", k) },
		FeedNames: func(k int) (string, string) {
			return fmt.Sprintf("x%d", k), fmt.Sprintf("labels%d", k)
		},
		Config:   cfg,
		Topology: comm.TopologyPS,
	}, nil
}

// buildShardedPSMLP is the sharded parameter-server layout: the gradient
// bucket layout is derived up front (same backward-flush order as the
// all-reduce planes), every bucket is mapped to a shard by the
// deterministic comm.BuildShardMap, and each variable is created on its
// bucket's shard task with its logical name. Workers, gradients, and
// initializers match buildPSMLP exactly — same RNG draw order from the
// same seed — so a sharded run starts, and stays, bit-identical to the
// single-PS run.
func buildShardedPSMLP(cfg MLPConfig, seed int64) (*MLPJob, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("%w: need at least one worker", ErrSetup)
	}
	shards := cfg.PSShards
	if shards < 1 {
		shards = 1
	}
	apply, err := optimizerApply(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	specs := mlpVarSpecs(cfg)

	// Bucket the gradients (backward-flush order: output layer first) and
	// shard the buckets before any variable exists — placement must be
	// known at creation time. The plane re-derives the identical map from
	// the job and cross-checks these placements.
	gspecs := make([]comm.GradSpec, 0, len(specs))
	for i := len(specs) - 1; i >= 0; i-- {
		gspecs = append(gspecs, comm.GradSpec{Name: specs[i].name, Sig: specs[i].sig})
	}
	buckets, err := comm.BuildBuckets(gspecs, cfg.BucketBytes)
	if err != nil {
		return nil, err
	}
	sm, err := comm.BuildShardMap(buckets, shards)
	if err != nil {
		return nil, err
	}
	shardOf := make(map[string]int, len(specs))
	for bi := range buckets {
		for _, m := range buckets[bi].Members {
			shardOf[m.Name] = sm.Assign[bi]
		}
	}

	vars := make([]*graph.Node, len(specs))
	for i, s := range specs {
		b.OnTask(fmt.Sprintf("ps%d", shardOf[s.name]))
		vars[i] = b.Variable(s.name, s.sig)
	}

	grads := make(map[*graph.Node][]*graph.Node)
	var workerTasks []string
	for k := 0; k < cfg.Workers; k++ {
		task := fmt.Sprintf("worker%d", k)
		workerTasks = append(workerTasks, task)
		b.OnTask(task)
		loss := addWorkerForward(b, cfg, k, vars)
		g, err := graph.Gradients(b, loss, vars)
		if err != nil {
			return nil, err
		}
		for _, v := range vars {
			grads[v] = append(grads[v], g[v])
		}
	}

	// Vars in the same backward-flush order the bucket layout was built
	// from, so the plane's layout matches the placements above.
	job := &comm.Job{Workers: workerTasks, Apply: apply}
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		job.Vars = append(job.Vars, &comm.VarSet{
			Name: v.Name(), Replicas: []*graph.Node{v}, Grads: grads[v]})
	}
	opts := comm.Options{BucketBytes: cfg.BucketBytes, Shards: shards, AggGroup: cfg.AggGroup}
	plane, err := comm.NewPlane(comm.TopologyShardedPS)
	if err != nil {
		return nil, err
	}
	if err := plane.WireUpdates(b, job, opts); err != nil {
		return nil, err
	}
	if err := pruneToTraining(b, cfg.Workers); err != nil {
		return nil, err
	}

	inits := []VarInit{
		{Name: "w1", Init: func(t *tensor.Tensor) { tensor.GlorotInit(t, rng) }},
		{Name: "b1", Init: nil},
		{Name: "w2", Init: func(t *tensor.Tensor) { tensor.GlorotInit(t, rng) }},
		{Name: "b2", Init: nil},
	}
	return &MLPJob{
		Builder:     b,
		WorkerTasks: workerTasks,
		VarInits:    inits,
		LossName:    func(k int) string { return fmt.Sprintf("loss%d", k) },
		FeedNames: func(k int) (string, string) {
			return fmt.Sprintf("x%d", k), fmt.Sprintf("labels%d", k)
		},
		Config:   cfg,
		Topology: comm.TopologyShardedPS,
		Buckets:  buckets,
		ShardMap: sm,
	}, nil
}

// buildAllReduceMLP is the replicated data-parallel layout: per-worker
// variable copies, gradients bucketed and all-reduced over the ring or
// tree plane, optimizer applied per replica. Replicas are initialized
// from prototype tensors drawn in the same RNG order as the PS layout's
// initializers, so a DP run from seed S starts — and, because the
// reduction order matches the PS fold, stays — bit-identical to the PS
// run from seed S.
func buildAllReduceMLP(cfg MLPConfig, topo comm.Topology, seed int64) (*MLPJob, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("%w: need at least one worker", ErrSetup)
	}
	apply, err := optimizerApply(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	specs := mlpVarSpecs(cfg)

	replicas := make(map[string][]*graph.Node, len(specs))
	gradsByVar := make(map[string][]*graph.Node, len(specs))
	var workerTasks []string
	for k := 0; k < cfg.Workers; k++ {
		task := fmt.Sprintf("worker%d", k)
		workerTasks = append(workerTasks, task)
		b.OnTask(task)
		params := make([]*graph.Node, len(specs))
		for i, s := range specs {
			params[i] = b.Variable(replicaName(s.name, k), s.sig)
		}
		loss := addWorkerForward(b, cfg, k, params)
		g, err := graph.Gradients(b, loss, params)
		if err != nil {
			return nil, err
		}
		for i, s := range specs {
			replicas[s.name] = append(replicas[s.name], params[i])
			gradsByVar[s.name] = append(gradsByVar[s.name], g[params[i]])
		}
	}

	// Vars in backward-flush order (output layer first) so the first
	// buckets fill while the remaining backward compute still runs.
	job := &comm.Job{Workers: workerTasks, Apply: apply}
	for i := len(specs) - 1; i >= 0; i-- {
		name := specs[i].name
		job.Vars = append(job.Vars, &comm.VarSet{
			Name: name, Replicas: replicas[name], Grads: gradsByVar[name]})
	}
	opts := comm.Options{BucketBytes: cfg.BucketBytes, Segments: cfg.Segments}
	plane, err := comm.NewPlane(topo)
	if err != nil {
		return nil, err
	}
	if err := plane.WireUpdates(b, job, opts); err != nil {
		return nil, err
	}
	buckets, err := comm.BucketsForJob(job, opts)
	if err != nil {
		return nil, err
	}
	if err := pruneToTraining(b, cfg.Workers); err != nil {
		return nil, err
	}

	// Prototype initial values, drawn in mlpVarSpecs order — the exact
	// sequence the PS inits consume from the same seed.
	var inits []VarInit
	for _, s := range specs {
		var proto *tensor.Tensor
		if s.glorot {
			proto = tensor.New(s.sig.DType, s.sig.Shape...)
			tensor.GlorotInit(proto, rng)
		}
		for k := 0; k < cfg.Workers; k++ {
			var init func(*tensor.Tensor)
			if proto != nil {
				p := proto
				init = func(t *tensor.Tensor) {
					if err := t.CopyFrom(p); err != nil {
						panic(err)
					}
				}
			}
			inits = append(inits, VarInit{Name: replicaName(s.name, k), Init: init})
		}
	}
	return &MLPJob{
		Builder:     b,
		WorkerTasks: workerTasks,
		VarInits:    inits,
		LossName:    func(k int) string { return fmt.Sprintf("loss%d", k) },
		FeedNames: func(k int) (string, string) {
			return fmt.Sprintf("x%d", k), fmt.Sprintf("labels%d", k)
		},
		Config:   cfg,
		Topology: topo,
		Buckets:  buckets,
	}, nil
}

// SyntheticDataset produces fixed per-worker minibatches (a learnable
// random classification problem shared across runs for comparability).
func (j *MLPJob) SyntheticDataset(seed int64) map[string]map[string]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	feeds := make(map[string]map[string]*tensor.Tensor, len(j.WorkerTasks))
	for k, task := range j.WorkerTasks {
		x := tensor.New(tensor.Float32, j.Config.Batch, j.Config.In)
		labels := tensor.New(tensor.Int32, j.Config.Batch)
		tensor.RandomUniform(x, rng, 1)
		tensor.RandomLabels(labels, rng, j.Config.Classes)
		xn, ln := j.FeedNames(k)
		feeds[task] = map[string]*tensor.Tensor{xn: x, ln: labels}
	}
	return feeds
}

// InitAll runs every variable initializer against the cluster.
func (j *MLPJob) InitAll(cl *Cluster) error {
	for _, vi := range j.VarInits {
		if err := cl.InitVariable(vi.Name, vi.Init); err != nil {
			return err
		}
	}
	return nil
}
