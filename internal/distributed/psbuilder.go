package distributed

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// MLPConfig describes a data-parallel MLP classifier training job in the
// parameter-server architecture (the paper's Figure 3 layout): one replica
// per worker computing gradients against shared variables that live on the
// PS tasks round-robin; the PS sums the workers' gradients and applies SGD.
type MLPConfig struct {
	Workers int
	PSCount int
	Batch   int
	In      int
	Hidden  int
	Classes int
	LR      float32
	// Optimizer selects "sgd" (default), "momentum" (0.9), or "adam".
	Optimizer string
}

// VarInit pairs a variable name with its initializer.
type VarInit struct {
	Name string
	Init func(*tensor.Tensor)
}

// MLPJob is the built graph plus everything needed to run it.
type MLPJob struct {
	Builder     *graph.Builder
	WorkerTasks []string
	VarInits    []VarInit
	// LossName returns worker k's loss fetch target.
	LossName func(worker int) string
	// FeedNames returns worker k's input/label placeholder names.
	FeedNames func(worker int) (x, labels string)
	Config    MLPConfig
}

// lookup finds a node by name among the builder's nodes.
func lookup(b *graph.Builder, name string) (*graph.Node, error) {
	for _, n := range b.Nodes() {
		if n.Name() == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("%w: node %q not found", ErrSetup, name)
}

// BuildMLPTraining constructs the job. Initialize variables with
// Cluster.InitVariable using the returned VarInits after Launch.
func BuildMLPTraining(cfg MLPConfig, seed int64) (*MLPJob, error) {
	if cfg.Workers < 1 || cfg.PSCount < 1 {
		return nil, fmt.Errorf("%w: need at least one worker and one ps", ErrSetup)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	psTask := func(i int) string { return fmt.Sprintf("ps%d", i%cfg.PSCount) }

	b.OnTask(psTask(0))
	w1 := b.Variable("w1", graph.Static(tensor.Float32, cfg.In, cfg.Hidden))
	b.OnTask(psTask(1))
	b1 := b.Variable("b1", graph.Static(tensor.Float32, cfg.Hidden))
	b.OnTask(psTask(2))
	w2 := b.Variable("w2", graph.Static(tensor.Float32, cfg.Hidden, cfg.Classes))
	b.OnTask(psTask(3))
	b2 := b.Variable("b2", graph.Static(tensor.Float32, cfg.Classes))
	vars := []*graph.Node{w1, b1, w2, b2}

	grads := make(map[*graph.Node][]*graph.Node)
	var workerTasks []string
	for k := 0; k < cfg.Workers; k++ {
		task := fmt.Sprintf("worker%d", k)
		workerTasks = append(workerTasks, task)
		b.OnTask(task)
		x := b.Placeholder(fmt.Sprintf("x%d", k), graph.Static(tensor.Float32, cfg.Batch, cfg.In))
		labels := b.Placeholder(fmt.Sprintf("labels%d", k), graph.Static(tensor.Int32, cfg.Batch))
		h := b.ReLU(fmt.Sprintf("h%d", k),
			b.BiasAdd(fmt.Sprintf("z1_%d", k), b.MatMul(fmt.Sprintf("mm1_%d", k), x, w1), b1))
		logits := b.BiasAdd(fmt.Sprintf("logits%d", k),
			b.MatMul(fmt.Sprintf("mm2_%d", k), h, w2), b2)
		loss := b.SoftmaxXent(fmt.Sprintf("loss%d", k), logits, labels)
		g, err := graph.Gradients(b, loss, vars)
		if err != nil {
			return nil, err
		}
		for _, v := range vars {
			grads[v] = append(grads[v], g[v])
		}
	}
	for _, v := range vars {
		b.OnTask(v.Task())
		sum := grads[v][0]
		for i := 1; i < len(grads[v]); i++ {
			sum = b.Add(fmt.Sprintf("gsum_%s_%d", v.Name(), i), sum, grads[v][i])
		}
		switch cfg.Optimizer {
		case "", "sgd":
			b.ApplySGD("apply_"+v.Name(), v, sum, cfg.LR)
		case "momentum":
			b.ApplyMomentum("apply_"+v.Name(), v, sum, cfg.LR, 0.9)
		case "adam":
			b.ApplyAdam("apply_"+v.Name(), v, sum, cfg.LR)
		default:
			return nil, fmt.Errorf("%w: unknown optimizer %q", ErrSetup, cfg.Optimizer)
		}
	}
	// Drop dangling gradient nodes (e.g. toward placeholders): keep the
	// losses and optimizer updates.
	keep := b.StatefulNodes()
	for k := 0; k < cfg.Workers; k++ {
		n, err := lookup(b, fmt.Sprintf("loss%d", k))
		if err != nil {
			return nil, err
		}
		keep = append(keep, n)
	}
	b.Prune(keep...)
	if b.Err() != nil {
		return nil, b.Err()
	}

	inits := []VarInit{
		{Name: "w1", Init: func(t *tensor.Tensor) { tensor.GlorotInit(t, rng) }},
		{Name: "b1", Init: nil},
		{Name: "w2", Init: func(t *tensor.Tensor) { tensor.GlorotInit(t, rng) }},
		{Name: "b2", Init: nil},
	}
	return &MLPJob{
		Builder:     b,
		WorkerTasks: workerTasks,
		VarInits:    inits,
		LossName:    func(k int) string { return fmt.Sprintf("loss%d", k) },
		FeedNames: func(k int) (string, string) {
			return fmt.Sprintf("x%d", k), fmt.Sprintf("labels%d", k)
		},
		Config: cfg,
	}, nil
}

// SyntheticDataset produces fixed per-worker minibatches (a learnable
// random classification problem shared across runs for comparability).
func (j *MLPJob) SyntheticDataset(seed int64) map[string]map[string]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	feeds := make(map[string]map[string]*tensor.Tensor, len(j.WorkerTasks))
	for k, task := range j.WorkerTasks {
		x := tensor.New(tensor.Float32, j.Config.Batch, j.Config.In)
		labels := tensor.New(tensor.Int32, j.Config.Batch)
		tensor.RandomUniform(x, rng, 1)
		tensor.RandomLabels(labels, rng, j.Config.Classes)
		xn, ln := j.FeedNames(k)
		feeds[task] = map[string]*tensor.Tensor{xn: x, ln: labels}
	}
	return feeds
}

// InitAll runs every variable initializer against the cluster.
func (j *MLPJob) InitAll(cl *Cluster) error {
	for _, vi := range j.VarInits {
		if err := cl.InitVariable(vi.Name, vi.Init); err != nil {
			return err
		}
	}
	return nil
}
