package distributed

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// BenchmarkServingFleet drives the real serving plane over the emulated
// fabric: each iteration publishes one weight version and serves one full
// batch of queries per replica through the frontend. scripts/bench.sh folds
// the reported served_qps and staleness into BENCH_serve.json next to the
// netsim model curve.
func BenchmarkServingFleet(b *testing.B) {
	const n = 16
	spec := servingTestSpec(8, n)
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			vars := exec.NewVarStore()
			if err := vars.Create("w", tensor.New(tensor.Float32, n, n)); err != nil {
				b.Fatal(err)
			}
			if err := vars.Create("b", tensor.New(tensor.Float32, n)); err != nil {
				b.Fatal(err)
			}
			met := &metrics.Serve{}
			fleet, err := NewServingFleet(ServingConfig{
				Replicas: replicas, Spec: spec, Vars: vars, Metrics: met,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer fleet.Close()

			fill := func(v float32) {
				for _, name := range []string{"w", "b"} {
					t, err := vars.VarTensor(name)
					if err != nil {
						b.Fatal(err)
					}
					t.Fill(v)
				}
			}
			x := make([]float32, n)
			for i := range x {
				x[i] = 1
			}
			queries := spec.Batch * replicas
			var served, shed int64
			var mu sync.Mutex

			// Warm up: first version published and swapped in everywhere, so
			// the timed region measures steady-state serving, not boot.
			fill(1)
			if _, err := fleet.Publish(); err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := fleet.Query(x); err == nil {
					break
				}
			}

			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				fill(float32(i + 2))
				if _, err := fleet.Publish(); err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for q := 0; q < queries; q++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						_, err := fleet.Query(x)
						mu.Lock()
						if err == nil {
							served++
						} else {
							shed++
						}
						mu.Unlock()
					}()
				}
				wg.Wait()
			}
			elapsed := time.Since(start)
			b.StopTimer()

			if elapsed > 0 {
				b.ReportMetric(float64(served)/elapsed.Seconds(), "served_qps")
			}
			total := served + shed
			if total > 0 {
				b.ReportMetric(float64(shed)/float64(total)*100, "shed_pct")
			}
			b.ReportMetric(float64(met.Snapshot().StalenessVersionsMax), "staleness_versions")
		})
	}
}
