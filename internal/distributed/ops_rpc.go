package distributed

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/graph"
	"repro/internal/rdma"
	"repro/internal/rpc"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// RPC-baseline operator kernels: the sender serializes the tensor into a
// wire message and pushes it with a unary call; the receiving server's
// service handler deserializes into a fresh buffer and places it in the
// edge's mailbox, which the recv kernel polls. Every stage pays the copies
// the paper attributes to the RPC abstraction (§2.2).

// pushMethod is the tensor-push RPC method name.
const pushMethod = "tensor.push"

// --- RPCSend ---

type rpcSendOp struct{ spec analyzer.EdgeSpec }

func (op *rpcSendOp) Name() string    { return "RPCSend" }
func (op *rpcSendOp) EdgeKey() string { return op.spec.Key }

func (op *rpcSendOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantEdgeInput("RPCSend", in, 1); err != nil {
		return graph.Sig{}, err
	}
	return in[0], nil
}

func (op *rpcSendOp) ComputeAsync(ctx *graph.Context, done func(error)) {
	env, err := commEnv(ctx)
	if err != nil {
		done(err)
		return
	}
	client, err := env.client(op.spec.DstTask)
	if err != nil {
		done(err)
		return
	}
	in := ctx.Inputs[0]
	shape := make([]int64, in.Shape().Rank())
	for i, d := range in.Shape() {
		shape[i] = int64(d)
	}
	msg := wire.TensorMessage{
		Name:    op.spec.Key,
		DType:   uint32(in.DType()),
		Shape:   shape,
		Payload: in.Bytes(),
		Seq:     uint64(ctx.Iter) + 1,
	}
	enc := msg.Marshal() // serialization: copies the payload
	env.Metrics.AddSerialized(len(enc))
	env.Metrics.AddCopy(in.ByteSize())
	env.recordSent(op.spec.Key, len(enc))
	ctx.Output = in
	// The unary call blocks; run it off the scheduler worker. Don't push at
	// all once the iteration is dead: a stale push landing in the receiver's
	// mailbox after the abort could be handed to a later iteration as its
	// data — the same stale-transfer class the RDMA edges guard against with
	// TransferOpts.Canceled. The receive side additionally discards
	// mismatched sequence numbers, because a call already on the wire when
	// the step dies cannot be recalled.
	canceled := ctx.Canceled
	go func() {
		if canceled != nil && canceled() {
			done(fmt.Errorf("%w: edge %s push canceled by failed step: %w",
				ErrComm, op.spec.Key, rdma.ErrCanceled))
			return
		}
		_, err := client.Call(pushMethod, enc)
		done(err)
	}()
}

// --- RPCRecv (polls the edge mailbox) ---

type rpcRecvOp struct{ spec analyzer.EdgeSpec }

func (op *rpcRecvOp) Name() string    { return "RPCRecv" }
func (op *rpcRecvOp) EdgeKey() string { return op.spec.Key }

func (op *rpcRecvOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantEdgeInput("RPCRecv", in, 0); err != nil {
		return graph.Sig{}, err
	}
	return op.spec.Sig, nil
}

func (op *rpcRecvOp) Poll(ctx *graph.Context) (bool, error) {
	env, err := commEnv(ctx)
	if err != nil {
		return false, err
	}
	mb := env.mailbox(op.spec.Key)
	for {
		select {
		case item := <-mb.ch:
			if item.seq != ctx.Iter+1 {
				// A push from a dead iteration: the sender's call was already
				// on the wire when its step aborted, or a checkpoint rollback
				// rewound past it. Its seq cannot match the live iteration
				// (stale < live after a plain abort retry, stale > live after
				// a rollback), so discard it and keep draining rather than
				// deliver another iteration's tensor — or poison this one
				// with a hard error over a message nobody wants.
				continue
			}
			mb.stash(item)
			return true, nil
		default:
			return false, nil
		}
	}
}

func (op *rpcRecvOp) Compute(ctx *graph.Context) error {
	env, err := commEnv(ctx)
	if err != nil {
		return err
	}
	mb := env.mailbox(op.spec.Key)
	item, ok := mb.takeStash()
	if !ok {
		return fmt.Errorf("%w: RPCRecv scheduled without a message", ErrComm)
	}
	env.recordRecv(op.spec.Key, item.t.ByteSize())
	ctx.Output = item.t
	return nil
}

// registerPushService installs the tensor-push handler on a server's RPC
// server, routing messages into per-edge mailboxes.
func registerPushService(env *Env, register func(method string, h rpc.Handler)) {
	register(pushMethod, func(req []byte) ([]byte, error) {
		var msg wire.TensorMessage
		if err := msg.Unmarshal(req); err != nil { // deserialization copy
			return nil, err
		}
		env.Metrics.AddSerialized(len(req))
		env.Metrics.AddCopy(len(msg.Payload))
		dt := tensor.DType(msg.DType)
		shape := make(tensor.Shape, len(msg.Shape))
		for i, d := range msg.Shape {
			shape[i] = int(d)
		}
		t, err := tensor.FromBytes(dt, shape, msg.Payload)
		if err != nil {
			return nil, err
		}
		mb := env.mailbox(msg.Name)
		mb.ch <- mailboxItem{seq: int(msg.Seq), t: t}
		return nil, nil
	})
}
