package distributed

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/serve"
)

// Serving-plane wiring. The serve package owns the mechanism (publisher,
// banks, frontend); this file owns the fleet: one trainer endpoint and N
// replica endpoints on a fabric, the control-plane exchange that hands the
// publisher each replica's bank descriptors, and the same lease-based
// failure detector the training cluster uses — a replica that stops
// answering pings is evicted from routing and from the publication set,
// and a restarted incarnation is readmitted with a catch-up republish.

// serveTrainerEndpoint is the publisher's fabric address; replicas are
// serveReplicaTask(i).
const serveTrainerEndpoint = "serve-trainer"

func serveReplicaTask(i int) string { return fmt.Sprintf("replica%d", i) }

// ServingConfig parameterizes NewServingFleet.
type ServingConfig struct {
	// Replicas is the inference fleet size (≥ 1).
	Replicas int
	// Spec is the forward-only model every replica serves; its variable
	// names and shapes must match Vars (the layout contract).
	Spec serve.ForwardSpec
	// Vars is the trainer-side variable store snapshots are taken from.
	Vars *exec.VarStore
	// Lanes stripes each bank publication across QP lanes (default 2).
	Lanes int
	// MaxQueue / BatchWait tune frontend admission (serve defaults apply).
	MaxQueue  int
	BatchWait time.Duration
	// Heartbeat tunes the replica failure detector.
	Heartbeat HeartbeatConfig
	// Metrics receives serving counters; Recovery detector counters; Hists
	// latency histograms. All optional except Metrics' staleness gauge
	// consumers (nil disables).
	Metrics  *metrics.Serve
	Recovery *metrics.Recovery
	Hists    *metrics.Set
}

// servingReplica pairs a replica with the device that backs its banks.
type servingReplica struct {
	rep *serve.Replica
	dev *rdma.Device
}

// ServingFleet is one serving deployment: publisher, replicas, routing
// table, frontend, and the failure detector watching the replicas.
type ServingFleet struct {
	cfg      ServingConfig
	fabric   *rdma.Fabric
	tdev     *rdma.Device
	layout   *serve.WeightLayout
	pub      *serve.WeightPublisher
	table    *serve.RoutingTable
	frontend *serve.Frontend
	detector *heartbeatDetector

	mu       sync.Mutex
	replicas map[string]*servingReplica

	closeOnce sync.Once
}

// NewServingFleet builds and starts the fleet: every replica registered
// with the publisher, routing live, the frontend accepting queries, and
// the detector pinging. Nothing is published yet — call Publish per
// snapshot interval.
func NewServingFleet(cfg ServingConfig) (*ServingFleet, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("%w: serving fleet needs ≥1 replica", ErrSetup)
	}
	if cfg.Vars == nil || cfg.Spec.Build == nil {
		return nil, fmt.Errorf("%w: serving fleet needs Vars and Spec", ErrSetup)
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 2
	}
	if cfg.Recovery == nil {
		cfg.Recovery = &metrics.Recovery{}
	}
	layout, err := serve.LayoutFor(cfg.Vars, nil)
	if err != nil {
		return nil, err
	}
	fabric := rdma.NewFabric()
	tdev, err := rdma.CreateDevice(fabric, rdma.Config{
		Endpoint: serveTrainerEndpoint, QPsPerPeer: cfg.Lanes,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: creating publisher device: %w", ErrSetup, err)
	}
	pub, err := serve.NewWeightPublisher(serve.PublisherConfig{
		Dev: tdev, Vars: cfg.Vars, Layout: layout,
		Lanes: cfg.Lanes, Metrics: cfg.Metrics, Hists: cfg.Hists,
	})
	if err != nil {
		tdev.Close()
		return nil, err
	}
	f := &ServingFleet{
		cfg: cfg, fabric: fabric, tdev: tdev, layout: layout, pub: pub,
		table:    serve.NewRoutingTable(cfg.Metrics),
		replicas: make(map[string]*servingReplica, cfg.Replicas),
	}

	tasks := make([]string, cfg.Replicas)
	for i := range tasks {
		tasks[i] = serveReplicaTask(i)
		if err := f.startReplica(tasks[i]); err != nil {
			f.Close()
			return nil, err
		}
	}

	// Replica death: routing eviction plus removal from the publication
	// set, so one dead replica neither serves stale answers nor stalls the
	// trainer's next publish at its unreleased banks.
	f.detector, err = newHeartbeatDetector(fabric, tasks, cfg.Heartbeat, cfg.Recovery,
		func(task string) {
			f.table.MarkDead(task)
			f.pub.RemoveReplica(task)
		})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.detector.start()

	f.frontend, err = serve.NewFrontend(serve.FrontendConfig{
		Table: f.table, Spec: cfg.Spec,
		MaxQueue: cfg.MaxQueue, BatchWait: cfg.BatchWait,
		TrainerVersion: pub.Version,
		Metrics:        cfg.Metrics, Hists: cfg.Hists,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.frontend.Start()
	return f, nil
}

// startReplica brings one replica endpoint up and wires it to the
// publisher: bank descriptors flow publisher-ward, the ack descriptor
// replica-ward — the §3.1 control-plane exchange, after which the data
// path is purely one-sided.
func (f *ServingFleet) startReplica(task string) error {
	dev, err := rdma.CreateDevice(f.fabric, rdma.Config{
		Endpoint: task, QPsPerPeer: f.cfg.Lanes,
	})
	if err != nil {
		return fmt.Errorf("%w: creating replica %s: %w", ErrSetup, task, err)
	}
	// Replicas answer the same lease pings as training servers.
	dev.RegisterRPC(leasePingMethod, func(from string, req []byte) ([]byte, error) {
		return req, nil
	})
	rep, err := serve.NewReplica(serve.ReplicaConfig{
		Task: task, Dev: dev, Layout: f.layout, Spec: f.cfg.Spec,
		PublisherTask: serveTrainerEndpoint,
		Metrics:       f.cfg.Metrics, Hists: f.cfg.Hists,
	})
	if err != nil {
		dev.Close()
		return err
	}
	if err := f.pub.AddReplica(rep.Target()); err != nil {
		dev.Close()
		return err
	}
	ack, err := f.pub.AckRegion(task)
	if err != nil {
		dev.Close()
		return err
	}
	rep.SetAckRegion(ack)
	rep.Start()
	f.mu.Lock()
	f.replicas[task] = &servingReplica{rep: rep, dev: dev}
	f.mu.Unlock()
	f.table.Add(rep)
	return nil
}

// Publish snapshots the trainer store as the next weight version and fans
// it out; call every K training steps.
func (f *ServingFleet) Publish() (uint64, error) { return f.pub.Publish() }

// Version returns the last fully committed publication.
func (f *ServingFleet) Version() uint64 { return f.pub.Version() }

// Query routes one query through the frontend.
func (f *ServingFleet) Query(x []float32) (serve.Result, error) {
	return f.frontend.Query(x)
}

// Frontend exposes the admission queue (benchmarks drive it directly).
func (f *ServingFleet) Frontend() *serve.Frontend { return f.frontend }

// Table exposes the routing table.
func (f *ServingFleet) Table() *serve.RoutingTable { return f.table }

// Replica returns the named replica (nil if unknown or killed).
func (f *ServingFleet) Replica(task string) *serve.Replica {
	f.mu.Lock()
	defer f.mu.Unlock()
	if sr, ok := f.replicas[task]; ok {
		return sr.rep
	}
	return nil
}

// KillReplica simulates a replica crash: the swap loop dies with the
// process and the device leaves the fabric mid-whatever, exactly like a
// training-server kill. Detection and eviction are the detector's job.
func (f *ServingFleet) KillReplica(task string) error {
	f.mu.Lock()
	sr, ok := f.replicas[task]
	delete(f.replicas, task)
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: unknown replica %q", ErrSetup, task)
	}
	sr.rep.Close()
	sr.dev.Close()
	return nil
}

// AwaitDead blocks until the detector has expired the task's lease.
func (f *ServingFleet) AwaitDead(task string, wait time.Duration) bool {
	return f.detector.confirmDead(task, wait)
}

// RestartReplica readmits a crashed replica under its old task name: fresh
// device and banks, re-registration with the publisher, a catch-up
// republish of the current version, and routing re-admission. The lease is
// suspended across the rebuild so the restart window is not scored as a
// second outage.
func (f *ServingFleet) RestartReplica(task string) error {
	f.detector.suspend(task)
	if err := f.startReplica(task); err != nil {
		return err
	}
	if _, err := f.pub.Republish(task); err != nil {
		return err
	}
	f.cfg.Recovery.AddRejoin()
	f.detector.resume(task)
	return nil
}

// Close tears the fleet down: frontend first (stop admitting), then the
// detector, then replicas and the trainer device.
func (f *ServingFleet) Close() {
	f.closeOnce.Do(func() {
		if f.frontend != nil {
			f.frontend.Close()
		}
		if f.detector != nil {
			f.detector.stop()
		}
		f.mu.Lock()
		reps := make([]*servingReplica, 0, len(f.replicas))
		for _, sr := range f.replicas {
			reps = append(reps, sr)
		}
		f.replicas = make(map[string]*servingReplica)
		f.mu.Unlock()
		for _, sr := range reps {
			sr.rep.Close()
			sr.dev.Close()
		}
		f.tdev.Close()
	})
}
