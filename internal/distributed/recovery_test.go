package distributed

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Tests for the elastic-recovery tentpole: the lease failure detector, the
// in-place checkpoint restore, and the end-to-end crash → detect → restart
// → rollback → replay acceptance run.

// launchPSRecovery launches the standard 2-worker/2-PS training cluster
// with the same init and dataset seeds as trainCluster (so runs are
// bit-comparable) but leaves stepping to the caller.
func launchPSRecovery(t *testing.T, cfg Config) (*Cluster,
	map[string]map[string]*tensor.Tensor, map[string][]string, []string) {
	t.Helper()
	const workers, psCount, batch, in, classes = 2, 2, 8, 12, 4
	b, workerTasks := buildPSTraining(t, workers, psCount, batch, in, classes, 0.2)
	cl, err := Launch(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	rng := rand.New(rand.NewSource(99))
	if err := cl.InitVariable("w", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("bias", nil); err != nil {
		t.Fatal(err)
	}
	feeds := make(map[string]map[string]*tensor.Tensor)
	fetches := make(map[string][]string)
	dataRng := rand.New(rand.NewSource(7))
	for k, task := range workerTasks {
		x := tensor.New(tensor.Float32, batch, in)
		labels := tensor.New(tensor.Int32, batch)
		tensor.RandomUniform(x, dataRng, 1)
		tensor.RandomLabels(labels, dataRng, classes)
		feeds[task] = map[string]*tensor.Tensor{
			fmt.Sprintf("x%d", k):      x,
			fmt.Sprintf("labels%d", k): labels,
		}
		fetches[task] = []string{fmt.Sprintf("loss%d", k)}
	}
	return cl, feeds, fetches, workerTasks
}

func meanLoss(t *testing.T, out map[string]map[string]*tensor.Tensor, workerTasks []string) float32 {
	t.Helper()
	var sum float32
	for k, task := range workerTasks {
		sum += out[task][fmt.Sprintf("loss%d", k)].Float32s()[0]
	}
	return sum / float32(len(workerTasks))
}

// TestHeartbeatDetectorExpiresAndResumes drives the detector directly
// against raw devices: healthy peers renew their leases, a closed device's
// lease expires exactly once within the configured timeout, and a resumed
// lease (after the peer re-registers) picks back up without a false expiry.
func TestHeartbeatDetectorExpiresAndResumes(t *testing.T) {
	f := rdma.NewFabric()
	echo := func(from string, req []byte) ([]byte, error) { return req, nil }
	mkTask := func(name string) *rdma.Device {
		d, err := rdma.CreateDevice(f, rdma.Config{Endpoint: name})
		if err != nil {
			t.Fatal(err)
		}
		d.RegisterRPC(leasePingMethod, echo)
		return d
	}
	t1 := mkTask("t1")
	t2 := mkTask("t2")
	defer t1.Close()

	cfg := HeartbeatConfig{Period: 3 * time.Millisecond, Timeout: 24 * time.Millisecond}
	met := &metrics.Recovery{}
	expired := make(chan string, 4)
	det, err := newHeartbeatDetector(f, []string{"t1", "t2"}, cfg, met,
		func(task string) { expired <- task })
	if err != nil {
		t.Fatal(err)
	}
	det.start()
	defer det.stop()

	// Healthy phase: leases renew, nothing expires.
	time.Sleep(10 * cfg.Period)
	select {
	case task := <-expired:
		t.Fatalf("lease for %s expired with both peers healthy", task)
	default:
	}
	if met.Snapshot().Heartbeats == 0 {
		t.Fatal("no heartbeats recorded in the healthy phase")
	}

	// Kill t2: its lease must expire within the timeout (plus ping slack).
	killed := time.Now()
	t2.Close()
	select {
	case task := <-expired:
		if task != "t2" {
			t.Fatalf("expired %s, want t2", task)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lease never expired after peer death")
	}
	if elapsed := time.Since(killed); elapsed > cfg.Timeout+20*cfg.Period+250*time.Millisecond {
		t.Errorf("detection took %v, lease timeout is %v", elapsed, cfg.Timeout)
	}
	if !det.confirmDead("t2", 0) {
		t.Error("confirmDead(t2) false after expiry")
	}

	// Expire-once: further silence must not re-fire.
	time.Sleep(3 * cfg.Timeout)
	select {
	case task := <-expired:
		t.Fatalf("lease for %s expired twice in one outage", task)
	default:
	}
	if n := met.Snapshot().LeaseExpiries; n != 1 {
		t.Errorf("LeaseExpiries = %d, want 1", n)
	}

	// Rejoin: restart t2 under the same endpoint, resume its lease.
	det.suspend("t2")
	t2 = mkTask("t2")
	defer t2.Close()
	det.resume("t2")
	before := met.Snapshot().Heartbeats
	time.Sleep(10 * cfg.Period)
	select {
	case task := <-expired:
		t.Fatalf("false expiry for %s after rejoin", task)
	default:
	}
	if met.Snapshot().Heartbeats <= before {
		t.Error("no heartbeats from the rejoined peer")
	}
}

// TestLoadCheckpointRestoresRegisteredStorage is the in-place-restore
// regression (the bug class: a restore that allocates fresh tensors
// silently detaches variables from their RDMA-registered staging slots, so
// every later weight push degrades to a copy). The restored variable must
// keep the exact backing array — the staging slot's — and a post-restore
// step must still send zero-copy.
func TestLoadCheckpointRestoresRegisteredStorage(t *testing.T) {
	cl, feeds, fetches, _ := launchPSRecovery(t, Config{Kind: RDMA, ArenaBytes: 1 << 20})
	step := func(iter int) {
		t.Helper()
		if _, err := cl.Step(iter, feeds, fetches); err != nil {
			t.Fatal(err)
		}
	}
	for iter := 0; iter < 3; iter++ {
		step(iter)
	}

	wBefore, err := cl.VarTensor("w")
	if err != nil {
		t.Fatal(err)
	}
	saved := wBefore.Clone()
	savedPtr := &wBefore.Bytes()[0]

	// The zero-copy analysis must have placed w inside ps0's sender staging
	// slot; identity against the slot pins "registered storage", not just
	// "same tensor as before".
	srv := cl.Server("ps0")
	srv.Env.mu.Lock()
	slot, staged := srv.Env.stagings["w"]
	srv.Env.mu.Unlock()
	if !staged {
		t.Fatal("w has no staging slot on ps0")
	}
	if &slot.tensor.Bytes()[0] != savedPtr {
		t.Fatal("w is not living in its staging slot before the restore")
	}

	var snap bytes.Buffer
	if err := cl.SaveCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	// Train past the snapshot so the restore has real work to undo.
	step(3)
	step(4)
	if wBefore.Equal(saved) {
		t.Fatal("training did not change w; restore would be vacuous")
	}

	if err := cl.LoadCheckpoint(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	wAfter, err := cl.VarTensor("w")
	if err != nil {
		t.Fatal(err)
	}
	if &wAfter.Bytes()[0] != savedPtr {
		t.Error("restore moved w out of its registered staging slot")
	}
	if !wAfter.Equal(saved) {
		t.Error("restore did not recover the checkpointed values")
	}

	// A further step must push weights without bouncing through a copy.
	zcBefore := totalZeroCopy(cl)
	step(5)
	if totalZeroCopy(cl) <= zcBefore {
		t.Error("post-restore step recorded no zero-copy sends: slot aliasing broken")
	}
}

func totalZeroCopy(cl *Cluster) int64 {
	var n int64
	for _, s := range cl.MetricsSnapshot() {
		n += s.ZeroCopyOps
	}
	return n
}

// TestEnableRecoveryRejectsRPCMechanisms: the detector and teardown act on
// fabric devices, which RPC-based mechanisms do not have.
func TestEnableRecoveryRejectsRPCMechanisms(t *testing.T) {
	cl, _, _, _ := launchPSRecovery(t, Config{
		Kind: GRPCTCP, ArenaBytes: 1 << 20,
		RingCfg: transport.RingConfig{Slots: 16, SlotSize: 8 << 10},
	})
	if _, err := cl.EnableRecovery(RecoveryConfig{}); !errors.Is(err, ErrSetup) {
		t.Fatalf("EnableRecovery on grpc-tcp: %v, want ErrSetup", err)
	}
}

// recoveryAcceptanceRun runs the 20-step PS training under Recovery.Run,
// optionally crashing a task ~1ms into step 10 via the chaos crash script.
// Striping and coalescing are on, so the rebuilt edges must bring back the
// multi-QP lanes and coalesce groups too.
func recoveryAcceptanceRun(t *testing.T, crashTask string) (map[int]float32, []float32, []float32, metrics.RecoverySnapshot) {
	t.Helper()
	const steps = 20
	cl, feeds, fetches, workerTasks := launchPSRecovery(t, Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer: rdma.TransferOpts{
			Deadline:          8 * time.Second,
			Stripes:           2,
			CoalesceThreshold: 256,
		},
	})
	rec, err := cl.EnableRecovery(RecoveryConfig{
		Heartbeat:       HeartbeatConfig{Period: 5 * time.Millisecond},
		CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var inj *chaos.Injector
	if crashTask != "" {
		inj = chaos.New(chaos.Plan{
			Seed:   17,
			Script: []chaos.Event{{At: time.Millisecond, Crash: crashTask}},
			Crash:  func(task string) { _ = cl.KillTask(task) },
		})
		inj.Install(cl.Fabric())
		t.Cleanup(inj.Stop)
	}
	losses := make(map[int]float32)
	onStep := func(iter int, out map[string]map[string]*tensor.Tensor) {
		losses[iter] = meanLoss(t, out, workerTasks)
		if iter == 9 && inj != nil {
			// Arm the kill so it strikes ~1ms into step 10.
			inj.Start()
		}
	}
	if err := rec.Run(steps, feeds, fetches, onStep); err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if inj != nil {
		if n := inj.Counters().Injected[chaos.CrashEvent]; n != 1 {
			t.Errorf("crash events injected = %d, want 1", n)
		}
	}
	wT, err := cl.VarTensor("w")
	if err != nil {
		t.Fatal(err)
	}
	biasT, err := cl.VarTensor("bias")
	if err != nil {
		t.Fatal(err)
	}
	w := append([]float32(nil), wT.Float32s()...)
	bias := append([]float32(nil), biasT.Float32s()...)
	return losses, w, bias, rec.Metrics()
}

// TestRecoveryWorkerCrashBitIdentical is the acceptance test: a worker is
// killed mid-step-10 of a 20-step run; the lease detector notices, the
// recovery driver restarts it, rolls back to the step-10 checkpoint, and
// replays — and the final variables are bit-identical to an uninterrupted
// run with the same seeds.
func TestRecoveryWorkerCrashBitIdentical(t *testing.T) {
	cleanLosses, cleanW, cleanBias, cleanRS := recoveryAcceptanceRun(t, "")
	if cleanRS.LeaseExpiries != 0 || cleanRS.Recoveries != 0 {
		t.Fatalf("clean run saw expiries=%d recoveries=%d", cleanRS.LeaseExpiries, cleanRS.Recoveries)
	}
	if cleanRS.Checkpoints < 4 { // steps 0, 5, 10, 15
		t.Fatalf("clean run took %d checkpoints, want >= 4", cleanRS.Checkpoints)
	}

	losses, w, bias, rs := recoveryAcceptanceRun(t, "worker1")

	// The crash was detected by the lease detector, the task rejoined, and
	// state was rolled back — not merely survived by retries.
	if rs.LeaseExpiries < 1 {
		t.Error("no lease expiry: crash was not detected by the heartbeat detector")
	}
	if rs.Rejoins < 1 {
		t.Error("no rejoin recorded")
	}
	if rs.Rollbacks < 1 {
		t.Error("no rollback recorded")
	}
	if rs.Recoveries < 1 {
		t.Error("no completed recovery recorded")
	}

	// Bit-identity of the whole final state and the loss trajectory.
	if len(w) != len(cleanW) || len(bias) != len(cleanBias) {
		t.Fatal("variable shapes diverged")
	}
	for i := range w {
		if w[i] != cleanW[i] {
			t.Fatalf("w[%d] = %v after recovery, %v clean (replay not bit-identical)", i, w[i], cleanW[i])
		}
	}
	for i := range bias {
		if bias[i] != cleanBias[i] {
			t.Fatalf("bias[%d] = %v after recovery, %v clean", i, bias[i], cleanBias[i])
		}
	}
	for iter, l := range cleanLosses {
		if got, ok := losses[iter]; !ok || got != l {
			t.Fatalf("loss[%d] = %v after recovery, %v clean", iter, losses[iter], l)
		}
	}
}

// TestRecoveryPSCrashRestoresStagedVariable kills a parameter server — the
// hard case: its variables live inside sender staging slots, so the
// rollback must recreate them inside the NEW incarnation's registered
// slots, not on the heap. Bit-identity of the final weights proves
// placement and values both came back.
func TestRecoveryPSCrashRestoresStagedVariable(t *testing.T) {
	_, cleanW, cleanBias, _ := recoveryAcceptanceRun(t, "")
	_, w, bias, rs := recoveryAcceptanceRun(t, "ps1")
	if rs.Recoveries < 1 || rs.Rejoins < 1 {
		t.Fatalf("recovery did not run: %+v", rs)
	}
	for i := range w {
		if w[i] != cleanW[i] {
			t.Fatalf("w[%d] diverged after ps crash recovery", i)
		}
	}
	for i := range bias {
		if bias[i] != cleanBias[i] {
			t.Fatalf("bias[%d] diverged after ps crash recovery", i)
		}
	}
}
