package distributed

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// buildRNNPS constructs an unrolled recurrent classifier with the shared
// recurrent weights on a parameter server: the hardest case for the
// allocation-site tracing, because one variable has many readers per
// iteration and its gradient accumulates across time steps before crossing
// back to the PS.
func buildRNNPS(t testing.TB, steps int) (*graph.Builder, []string) {
	t.Helper()
	const batch, vocab, hidden, classes = 8, 12, 16, 4
	b := graph.NewBuilder()
	b.OnTask("ps0")
	wxh := b.Variable("wxh", graph.Static(tensor.Float32, vocab, hidden))
	whh := b.Variable("whh", graph.Static(tensor.Float32, hidden, hidden))
	b.OnTask("ps1")
	wout := b.Variable("wout", graph.Static(tensor.Float32, hidden, classes))

	b.OnTask("worker0")
	h := b.Const("h0", tensor.New(tensor.Float32, batch, hidden))
	for s := 0; s < steps; s++ {
		x := b.Placeholder(fmt.Sprintf("x%d", s), graph.Static(tensor.Float32, batch, vocab))
		h = b.Tanh(fmt.Sprintf("h%d", s+1),
			b.Add(fmt.Sprintf("pre%d", s),
				b.MatMul(fmt.Sprintf("xh%d", s), x, wxh),
				b.MatMul(fmt.Sprintf("hh%d", s), h, whh)))
	}
	labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
	loss := b.SoftmaxXent("loss", b.MatMul("out", h, wout), labels)
	grads, err := graph.Gradients(b, loss, []*graph.Node{wxh, whh, wout})
	if err != nil {
		t.Fatal(err)
	}
	b.OnTask("ps0")
	b.ApplySGD("apply_wxh", wxh, grads[wxh], 0.2)
	b.ApplySGD("apply_whh", whh, grads[whh], 0.2)
	b.OnTask("ps1")
	b.ApplySGD("apply_wout", wout, grads[wout], 0.2)
	return b, []string{"wxh", "whh", "wout"}
}

func TestRNNSharedWeightsOverPS(t *testing.T) {
	const steps = 3
	b, varNames := buildRNNPS(t, steps)
	cl, err := Launch(b, Config{Kind: RDMA, ArenaBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(61))
	for _, name := range varNames {
		if err := cl.InitVariable(name, func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
			t.Fatal(err)
		}
	}
	// The recurrent weights cross once per direction despite having many
	// readers: one weight edge ps->worker, one accumulated-gradient edge
	// worker->ps per variable.
	if got := len(cl.Result().Edges); got != 6 {
		for _, e := range cl.Result().Edges {
			t.Logf("edge: %+v", e)
		}
		t.Fatalf("edges = %d, want 6 (3 vars x 2 directions)", got)
	}

	dataRng := rand.New(rand.NewSource(62))
	feeds := map[string]map[string]*tensor.Tensor{"worker0": {}}
	for s := 0; s < steps; s++ {
		x := tensor.New(tensor.Float32, 8, 12)
		tensor.RandomUniform(x, dataRng, 1)
		feeds["worker0"][fmt.Sprintf("x%d", s)] = x
	}
	labels := tensor.New(tensor.Int32, 8)
	tensor.RandomLabels(labels, dataRng, 4)
	feeds["worker0"]["labels"] = labels

	var first, last float32
	const iters = 30
	for iter := 0; iter < iters; iter++ {
		out, err := cl.Step(iter, feeds, map[string][]string{"worker0": {"loss"}})
		if err != nil {
			t.Fatal(err)
		}
		l := out["worker0"]["loss"].Float32s()[0]
		if iter == 0 {
			first = l
		}
		last = l
	}
	if last > first*0.7 {
		t.Errorf("RNN-over-PS did not converge: %v -> %v", first, last)
	}
	// Tracing must have promoted the accumulated-gradient sites: after the
	// first iteration the worker's sends are zero-copy.
	m := cl.Server("worker0").Metrics.Snapshot()
	if m.ZeroCopyOps == 0 {
		t.Error("no zero-copy gradient pushes recorded")
	}
	expectedCopies := int64(3) // one per gradient edge, tracing iteration only
	if m.MemCopies > expectedCopies {
		t.Errorf("worker made %d copies, want <= %d (tracing iteration only)",
			m.MemCopies, expectedCopies)
	}
}

func TestLargerClusterFourByFour(t *testing.T) {
	// 4 workers x 4 PS under the zero-copy mechanism: exercises QP
	// round-robin, many concurrent edges, and multi-shard round-robin
	// variable placement.
	job, err := BuildMLPTraining(MLPConfig{
		Workers: 4, PSCount: 4, Batch: 8,
		In: 12, Hidden: 16, Classes: 4, LR: 0.25,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Launch(job.Builder, Config{Kind: RDMA, ArenaBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := job.InitAll(cl); err != nil {
		t.Fatal(err)
	}
	feeds := job.SyntheticDataset(10)
	fetches := map[string][]string{}
	for k, task := range job.WorkerTasks {
		fetches[task] = []string{job.LossName(k)}
	}
	var first, last float32
	for iter := 0; iter < 20; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			t.Fatal(err)
		}
		var sum float32
		for k, task := range job.WorkerTasks {
			sum += out[task][job.LossName(k)].Float32s()[0]
		}
		mean := sum / 4
		if iter == 0 {
			first = mean
		}
		last = mean
	}
	if last > first*0.7 {
		t.Errorf("4x4 training did not converge: %v -> %v", first, last)
	}
	// 4 variables x 4 workers x 2 directions = 32 edges.
	if got := len(cl.Result().Edges); got != 32 {
		t.Errorf("edges = %d, want 32", got)
	}
}
