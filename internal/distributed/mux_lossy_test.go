package distributed

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// QP-mux and lossy-fabric coverage at the cluster layer: training through a
// bounded QP-slot pool must be bit-identical to direct per-peer QPs while
// the per-device QP count stays at O(slots), and training over a
// chunk-dropping fabric must recover every tensor via per-tensor selective
// retransmit — same bits, retransmit counters moving, no connection-level
// replay.

// TestMuxTrainingParity: a slot pool far smaller than the peer count forces
// constant LRU eviction and lease contention, yet training is bit-identical
// to the direct configuration and the QP state bound holds on every device.
func TestMuxTrainingParity(t *testing.T) {
	base := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 8 * time.Second},
	}
	const workers, steps = 3, 12
	refLosses, refCl, _ := runPSTrainingN(t, base, workers, steps)
	refW, err := refCl.VarTensor("w")
	if err != nil {
		t.Fatal(err)
	}
	refBias, err := refCl.VarTensor("bias")
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.QPSlots = 1 // ps0 talks to 3 workers over a single slot
	cfg.QPsPerPeer = 2
	losses, cl, ms := runPSTrainingN(t, cfg, workers, steps)
	for i := range refLosses {
		if losses[i] != refLosses[i] {
			t.Fatalf("loss[%d] = %v muxed, %v direct", i, losses[i], refLosses[i])
		}
	}
	w, err := cl.VarTensor("w")
	if err != nil {
		t.Fatal(err)
	}
	bias, err := cl.VarTensor("bias")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range refW.Float32s() {
		if w.Float32s()[i] != v {
			t.Fatalf("w[%d] = %v muxed, %v direct", i, w.Float32s()[i], v)
		}
	}
	for i, v := range refBias.Float32s() {
		if bias.Float32s()[i] != v {
			t.Fatalf("bias[%d] = %v muxed, %v direct", i, bias.Float32s()[i], v)
		}
	}
	// The bound: a device's live QPs never exceed slots × QPsPerPeer even
	// though it exchanged tensors with more peers than it has slots.
	for _, task := range []string{"ps0", "worker0", "worker1", "worker2"} {
		srv := cl.Server(task)
		if got, max := srv.Dev.QPCount(), cfg.QPSlots*cfg.QPsPerPeer; got > max {
			t.Errorf("%s holds %d QPs, cap %d", task, got, max)
		}
		if got := srv.Dev.PeerCount(); got > cfg.QPSlots {
			t.Errorf("%s bound to %d peers, slots %d", task, got, cfg.QPSlots)
		}
	}
	var evictions int64
	for _, s := range ms {
		evictions += s.QPEvictions
	}
	if evictions == 0 {
		t.Error("no LRU evictions despite peers > slots; mux was not exercised")
	}
	if st := cl.Server("ps0").Mux.Stats(); st.Leases == 0 {
		t.Error("ps0 mux recorded no leases")
	}
}

// Test64TaskMuxTrainingUnderRace is the real-bytes scale gate (named in
// scripts/verify.sh): 64 tasks train through an 8-slot mux under the race
// detector. The PS device would hold 63 QP groups direct; the mux keeps it
// at 8 while every gradient and update still lands (steps complete with
// finite losses), and lease exhaustion resolves via the ErrQPBusy backoff
// without burning fault-retry budgets.
func Test64TaskMuxTrainingUnderRace(t *testing.T) {
	if testing.Short() {
		t.Skip("64-task scale gate skipped in -short")
	}
	const workers, slots = 63, 8
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  8 << 20,
		PollTimeout: 120 * time.Second,
		QPSlots:     slots,
		QPsPerPeer:  2,
		Transfer:    rdma.TransferOpts{Deadline: 60 * time.Second},
	}
	losses, cl, ms := runPSTrainingN(t, cfg, workers, 2)
	for i, l := range losses {
		if l != l || l <= 0 { // NaN or nonsense
			t.Fatalf("loss[%d] = %v", i, l)
		}
	}
	for _, task := range []string{"ps0", "worker0", "worker31"} {
		srv := cl.Server(task)
		if got, max := srv.Dev.QPCount(), slots*cfg.QPsPerPeer; got > max {
			t.Errorf("%s holds %d QPs, cap %d", task, got, max)
		}
	}
	var evictions, busy int64
	for _, s := range ms {
		evictions += s.QPEvictions
		busy += s.QPBusy
	}
	if evictions == 0 {
		t.Error("63 peers over 8 slots evicted nothing; mux was bypassed")
	}
	t.Logf("64 tasks: %d evictions, %d busy rejections", evictions, busy)
}

// runPSTrainingN trains the softmax PS job with a configurable worker count
// and returns the per-step mean losses, the (closed-on-cleanup) cluster for
// device-level assertions, and the final metrics.
func runPSTrainingN(t *testing.T, cfg Config, workers, iters int) ([]float32, *Cluster, map[string]metrics.CommSnapshot) {
	t.Helper()
	const batch, in, classes = 4, 8, 3
	b, workerTasks := buildPSTraining(t, workers, 1, batch, in, classes, 0.1)
	cl, err := Launch(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	rng := rand.New(rand.NewSource(99))
	if err := cl.InitVariable("w", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("bias", nil); err != nil {
		t.Fatal(err)
	}
	feeds := make(map[string]map[string]*tensor.Tensor)
	fetches := make(map[string][]string)
	dataRng := rand.New(rand.NewSource(7))
	for k, task := range workerTasks {
		x := tensor.New(tensor.Float32, batch, in)
		labels := tensor.New(tensor.Int32, batch)
		tensor.RandomUniform(x, dataRng, 1)
		tensor.RandomLabels(labels, dataRng, classes)
		feeds[task] = map[string]*tensor.Tensor{
			fmt.Sprintf("x%d", k):      x,
			fmt.Sprintf("labels%d", k): labels,
		}
		fetches[task] = []string{fmt.Sprintf("loss%d", k)}
	}
	var losses []float32
	for iter := 0; iter < iters; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			t.Fatalf("step %d: %v", iter, err)
		}
		var sum float32
		for k, task := range workerTasks {
			sum += out[task][fmt.Sprintf("loss%d", k)].Float32s()[0]
		}
		losses = append(losses, sum/float32(workers))
	}
	return losses, cl, cl.MetricsSnapshot()
}

// TestLossyTrainingBitIdentical: seeded per-chunk drops on a lossy fabric
// must be recovered entirely by per-tensor selective retransmit — the run
// produces the exact bits of its lossless twin, the retransmit/NACK
// counters move, and the whole-transfer retry counter stays at zero (no
// connection-level replay). Covered per topology: plain PS, striped +
// coalesced PS, and ring all-reduce.
func TestLossyTrainingBitIdentical(t *testing.T) {
	t.Run("ps", func(t *testing.T) {
		cfg := Config{
			Kind:        RDMA,
			ArenaBytes:  1 << 20,
			PollTimeout: 30 * time.Second,
			LossyFabric: true,
			Transfer:    rdma.TransferOpts{Deadline: 8 * time.Second},
		}
		lossyPSRun(t, cfg, 0.05)
	})
	t.Run("striped+coalesced", func(t *testing.T) {
		cfg := Config{
			Kind:        RDMA,
			ArenaBytes:  1 << 20,
			PollTimeout: 30 * time.Second,
			LossyFabric: true,
			Transfer: rdma.TransferOpts{
				Deadline:          8 * time.Second,
				Stripes:           4,
				CoalesceThreshold: 100, // bias coalesces (lossless path), w stripes (lossy)
			},
		}
		lossyPSRun(t, cfg, 0.10)
	})
	t.Run("ring", func(t *testing.T) {
		cfg := Config{
			Kind:        RDMA,
			ArenaBytes:  1 << 20,
			PollTimeout: 30 * time.Second,
			LossyFabric: true,
			Transfer:    rdma.TransferOpts{Deadline: 8 * time.Second, Stripes: 2},
		}
		const steps = 10
		cleanLosses, cleanVars, _, err := runRingChaosTraining(t, cfg, steps, nil)
		if err != nil {
			t.Fatalf("lossless ring run: %v", err)
		}
		var inj *chaos.Injector
		losses, vars, ms, err := runRingChaosTraining(t, cfg, steps, func(cl *Cluster) {
			inj = chaos.New(chaos.Plan{
				Seed:          31,
				ChunkDropRate: 0.05,
				Metrics:       cl.Server("worker0").Metrics,
			})
			inj.Install(cl.Fabric())
			inj.Start()
		})
		defer inj.Stop()
		if err != nil {
			t.Fatalf("lossy ring run: %v", err)
		}
		assertLossyRecovered(t, inj, ms)
		for i := range cleanLosses {
			if losses[i] != cleanLosses[i] {
				t.Fatalf("loss[%d] = %v under chunk loss, %v lossless", i, losses[i], cleanLosses[i])
			}
		}
		for _, name := range mlpLogicalVars {
			for w := range vars[name] {
				for i := range vars[name][w] {
					if vars[name][w][i] != cleanVars[name][w][i] {
						t.Fatalf("%s/w%d[%d] = %v under chunk loss, %v lossless",
							name, w, i, vars[name][w][i], cleanVars[name][w][i])
					}
				}
			}
		}
	})
}

// lossyPSRun trains the 2-worker PS job twice with the given config —
// lossless, then with seeded chunk drops — and asserts bit-identity plus
// the selective-retransmit counter signature.
func lossyPSRun(t *testing.T, cfg Config, dropRate float64) {
	t.Helper()
	const psCount, steps = 1, 12
	cleanLosses, cleanW, cleanBias, _, err := runTransferTraining(t, cfg, psCount, steps, nil)
	if err != nil {
		t.Fatalf("lossless run: %v", err)
	}
	var inj *chaos.Injector
	losses, w, bias, ms, err := runTransferTraining(t, cfg, psCount, steps, func(cl *Cluster) {
		inj = chaos.New(chaos.Plan{
			Seed:          31,
			ChunkDropRate: dropRate,
			Metrics:       cl.Server("worker0").Metrics,
		})
		inj.Install(cl.Fabric())
		inj.Start()
	})
	defer inj.Stop()
	if err != nil {
		t.Fatalf("lossy run: %v", err)
	}
	assertLossyRecovered(t, inj, ms)
	for i := range cleanLosses {
		if losses[i] != cleanLosses[i] {
			t.Fatalf("loss[%d] = %v under chunk loss, %v lossless", i, losses[i], cleanLosses[i])
		}
	}
	for i := range cleanW {
		if w[i] != cleanW[i] {
			t.Fatalf("w[%d] = %v under chunk loss, %v lossless", i, w[i], cleanW[i])
		}
	}
	for i := range cleanBias {
		if bias[i] != cleanBias[i] {
			t.Fatalf("bias[%d] = %v under chunk loss, %v lossless", i, bias[i], cleanBias[i])
		}
	}
}

// assertLossyRecovered checks the counter signature of selective
// retransmit: chunks were dropped, NACKs asked for exactly the missing
// ones, and no whole-transfer retry (connection-level replay) ever fired.
func assertLossyRecovered(t *testing.T, inj *chaos.Injector, ms map[string]metrics.CommSnapshot) {
	t.Helper()
	if got := inj.Counters().Injected[chaos.ChunkDrop]; got == 0 {
		t.Fatal("no chunks dropped; the lossy path was not exercised")
	}
	var retransmits, nacks, retries int64
	for _, s := range ms {
		retransmits += s.RetransmitChunks
		nacks += s.NacksSent
		retries += s.Retries
	}
	if retransmits == 0 {
		t.Error("chunks were dropped but none selectively retransmitted")
	}
	if nacks == 0 {
		t.Error("chunks were dropped but no NACK was counted")
	}
	if retries != 0 {
		t.Errorf("%d whole-transfer retries; loss must be recovered per-chunk, not by replay", retries)
	}
}

// TestLossyTensorBlackholeFailsTyped: dropping 100% of one tensor's chunks
// (and only that tensor's) must fail the step with the typed edge timeout,
// bounded by the configured deadline — the NACK loop re-requests forever,
// the sender re-sends forever, and the deadline converts that into
// ErrTimeout instead of a hang or a connection replay.
func TestLossyTensorBlackholeFailsTyped(t *testing.T) {
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 3 * time.Second,
		LossyFabric: true,
		Transfer:    rdma.TransferOpts{Deadline: 1 * time.Second},
	}
	start := time.Now()
	_, _, _, ms, err := runTransferTraining(t, cfg, 1, 5, func(cl *Cluster) {
		// Blackhole the first static edge's tensor; every other edge runs
		// lossless, proving the targeting is semantic (per tensor id).
		var target uint64
		for _, e := range cl.Result().Edges {
			if e.Sig.Static {
				target = edgeTensorID(e.Key)
				break
			}
		}
		if target == 0 {
			t.Fatal("no static edge to blackhole")
		}
		inj := chaos.New(chaos.Plan{
			Seed:          5,
			ChunkDropRate: 1.0,
			TargetTensor:  target,
		})
		inj.Install(cl.Fabric())
		inj.Start()
		t.Cleanup(inj.Stop)
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("training succeeded with one tensor's chunks 100% dropped")
	}
	if !errors.Is(err, ErrEdgeTimeout) && !errors.Is(err, exec.ErrPollTimeout) {
		t.Fatalf("err = %v, want ErrEdgeTimeout or exec.ErrPollTimeout", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("typed failure took %v; deadlines were 1s/3s", elapsed)
	}
	if errors.Is(err, ErrEdgeTimeout) {
		var timeouts int64
		for _, s := range ms {
			timeouts += s.Timeouts
		}
		if timeouts == 0 {
			t.Error("edge timed out but no timeout was counted")
		}
	}
	t.Logf("blackholed tensor failed typed after %v: %v", elapsed, err)
}

// TestLossyStepAbortThenRecover: a step aborted mid-loss (blackholed tensor
// times out) must not poison later iterations — once the blackhole lifts,
// training resumes in the same cluster, and the cancellation contract holds
// under loss: no retransmitted chunk from the aborted epoch lands in a
// later iteration's slot (the epoch guard discards it; corruption would
// surface as NaN losses or failed steps below).
func TestLossyStepAbortThenRecover(t *testing.T) {
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 5 * time.Second,
		LossyFabric: true,
		Transfer:    rdma.TransferOpts{Deadline: 1 * time.Second},
	}
	const batch, in, classes = 8, 12, 4
	b, workerTasks := buildPSTraining(t, 2, 1, batch, in, classes, 0.2)
	cl, err := Launch(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(99))
	if err := cl.InitVariable("w", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("bias", nil); err != nil {
		t.Fatal(err)
	}
	feeds := make(map[string]map[string]*tensor.Tensor)
	fetches := make(map[string][]string)
	dataRng := rand.New(rand.NewSource(7))
	for k, task := range workerTasks {
		x := tensor.New(tensor.Float32, batch, in)
		labels := tensor.New(tensor.Int32, batch)
		tensor.RandomUniform(x, dataRng, 1)
		tensor.RandomLabels(labels, dataRng, classes)
		feeds[task] = map[string]*tensor.Tensor{
			fmt.Sprintf("x%d", k):      x,
			fmt.Sprintf("labels%d", k): labels,
		}
		fetches[task] = []string{fmt.Sprintf("loss%d", k)}
	}

	// Two clean steps, then blackhole one tensor and watch a step die typed,
	// then lift the blackhole and finish.
	for iter := 0; iter < 2; iter++ {
		if _, err := cl.Step(iter, feeds, fetches); err != nil {
			t.Fatalf("pre-loss step %d: %v", iter, err)
		}
	}
	var target uint64
	for _, e := range cl.Result().Edges {
		if e.Sig.Static {
			target = edgeTensorID(e.Key)
			break
		}
	}
	inj := chaos.New(chaos.Plan{Seed: 5, ChunkDropRate: 1.0, TargetTensor: target})
	inj.Install(cl.Fabric())
	inj.Start()
	if _, err := cl.Step(2, feeds, fetches); err == nil {
		t.Fatal("step succeeded through a blackholed tensor")
	} else if !errors.Is(err, ErrEdgeTimeout) && !errors.Is(err, exec.ErrPollTimeout) {
		t.Fatalf("aborted step err = %v, want ErrEdgeTimeout or exec.ErrPollTimeout", err)
	}
	inj.Stop() // heal: hooks cleared, chunks flow again

	for iter := 3; iter < 8; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			t.Fatalf("post-recovery step %d: %v", iter, err)
		}
		for k, task := range workerTasks {
			l := out[task][fmt.Sprintf("loss%d", k)].Float32s()[0]
			if l != l || l <= 0 {
				t.Fatalf("post-recovery step %d: loss[%s] = %v (stale chunk corrupted a live slot?)",
					iter, task, l)
			}
		}
	}
}
