package distributed

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/graph"
	"repro/internal/rdma"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Coalesced-path operator kernels: statically placed tensors below the
// coalesce threshold share one batch slot per (src, dst) task pair instead
// of paying a full slot write and reuse round-trip each. Every member edge
// stages its payload into the pair's batch (length-prefixed sub-message
// framing, see wire.BatchWriter); the iteration's last stager flushes the
// whole batch as one flagged write and completes all members.

// --- CoalescedSend ---

type coalescedSendOp struct{ spec analyzer.EdgeSpec }

func (op *coalescedSendOp) Name() string    { return "CoalescedSend" }
func (op *coalescedSendOp) EdgeKey() string { return op.spec.Key }

func (op *coalescedSendOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantEdgeInput("CoalescedSend", in, 1); err != nil {
		return graph.Sig{}, err
	}
	return in[0], nil
}

func (op *coalescedSendOp) ComputeAsync(ctx *graph.Context, done func(error)) {
	env, err := commEnv(ctx)
	if err != nil {
		done(err)
		return
	}
	m, err := env.coalSendEdge(op.spec.Key)
	if err != nil {
		done(err)
		return
	}
	in := ctx.Inputs[0]
	if in.ByteSize() != op.spec.Sig.ByteSize() {
		done(fmt.Errorf("%w: edge %s payload %dB, batch member %dB", ErrComm, op.spec.Key,
			in.ByteSize(), op.spec.Sig.ByteSize()))
		return
	}
	ctx.Output = in
	env.recordSent(op.spec.Key, wire.SubMsgSize(in.ByteSize()))
	env.Metrics.AddCopy(in.ByteSize()) // staging into the batch is a copy
	g := m.group
	// Staging and the flush run off the scheduler worker: the group lock is
	// held across the blocking flush, so an earlier iteration's in-flight
	// batch write blocks the next iteration's stagers instead of racing them.
	// Every stager of one batch belongs to the same iteration (the g.iter
	// guard resets stale batches), so the last stager's cancel flag covers
	// the whole flush.
	opts := env.xferOptsFor(g.key)
	opts.Canceled = ctx.Canceled
	go func() {
		g.mu.Lock()
		if ctx.Canceled != nil && ctx.Canceled() {
			// The run died while this member was being dispatched: the
			// remaining members will never stage, so the batch cannot fill
			// and nothing would ever fire the parked waiters. Fail the whole
			// group now — exec.Run's quiesce drain is waiting on them. (The
			// exec side also calls Env.FailPending for members that parked
			// before the failure; this check closes the race where a stager
			// lands after that sweep.)
			waiters := g.waiters
			g.waiters, g.staged = nil, 0
			g.sender.Reset()
			g.mu.Unlock()
			err := env.edgeErr(g.key, fmt.Errorf("batch member %s: %w", op.spec.Key, rdma.ErrCanceled))
			for _, w := range waiters {
				w(err)
			}
			done(err)
			return
		}
		if g.staged == 0 || g.iter != ctx.Iter {
			// New batch — or leftovers from a step that failed mid-staging.
			// Stale waiters belong to an aborted run; fail them rather than
			// let them count against this iteration's member tally.
			for _, w := range g.waiters {
				w(fmt.Errorf("%w: coalesce group %s batch abandoned by a failed step", ErrComm, g.key))
			}
			g.waiters, g.staged = nil, 0
			g.iter = ctx.Iter
			g.sender.Reset()
		}
		if err := g.sender.Stage(m.id, in.Bytes()); err != nil {
			g.mu.Unlock()
			done(env.edgeErr(op.spec.Key, err))
			return
		}
		g.staged++
		g.waiters = append(g.waiters, done)
		if g.staged < g.members {
			g.mu.Unlock()
			return
		}
		// Last member of the iteration: ship the batch and complete everyone.
		err := g.sender.FlushRetry(opts)
		waiters := g.waiters
		g.waiters, g.staged = nil, 0
		g.mu.Unlock()
		if err == nil {
			env.Metrics.AddCoalesced(len(waiters))
		}
		for _, w := range waiters {
			w(env.edgeErr(g.key, err))
		}
	}()
}

// --- CoalescedRecv (polling-async) ---

type coalescedRecvOp struct{ spec analyzer.EdgeSpec }

func (op *coalescedRecvOp) Name() string    { return "CoalescedRecv" }
func (op *coalescedRecvOp) EdgeKey() string { return op.spec.Key }

func (op *coalescedRecvOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantEdgeInput("CoalescedRecv", in, 0); err != nil {
		return graph.Sig{}, err
	}
	return op.spec.Sig, nil
}

func (op *coalescedRecvOp) Poll(ctx *graph.Context) (bool, error) {
	env, err := commEnv(ctx)
	if err != nil {
		return false, err
	}
	m, err := env.coalRecvEdge(op.spec.Key)
	if err != nil {
		return false, err
	}
	g := m.group
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ackErr != nil {
		return false, env.edgeErr(g.key, g.ackErr)
	}
	if g.iter != ctx.Iter {
		// Payloads left over from a step that failed before every member
		// consumed its sub-message: that batch was already acked, so drop it.
		clear(g.pending)
		g.iter = ctx.Iter
	}
	if _, ok := g.pending[m.id]; ok {
		return true, nil
	}
	if !g.recv.Poll() {
		return false, nil
	}
	// A batch landed: copy every sub-message out of the slot (the decoded
	// payloads alias it), release the slot, and ack the sender once so it can
	// flush the next batch while these payloads are consumed.
	msgs, err := g.recv.Messages()
	if err != nil {
		return false, env.edgeErr(g.key, err)
	}
	for _, sub := range msgs {
		g.pending[sub.ID] = append([]byte(nil), sub.Payload...)
	}
	g.recv.Consume()
	if !g.haveAck {
		return false, fmt.Errorf("%w: coalesce group %s has no sender ack descriptor", ErrComm, g.key)
	}
	ack := g.senderAck
	// The ack is deliberately NOT wired to ctx.Canceled: it must complete
	// even if this iteration aborts, because it is what marks the sender's
	// batch slot reusable for the next iteration. Canceling it on a mere
	// step abort would set ackErr — which is never cleared — and poison the
	// group forever on a healthy fabric; a genuinely dead fabric is still
	// bounded by the transfer deadline in ackOpts.
	ackOpts := env.xferOpts()
	go func() {
		if err := g.recv.AckRetry(ack, ackOpts); err != nil {
			g.mu.Lock()
			g.ackErr = err
			g.mu.Unlock()
		}
	}()
	_, ok := g.pending[m.id]
	return ok, nil
}

func (op *coalescedRecvOp) Compute(ctx *graph.Context) error {
	env, err := commEnv(ctx)
	if err != nil {
		return err
	}
	m, err := env.coalRecvEdge(op.spec.Key)
	if err != nil {
		return err
	}
	g := m.group
	g.mu.Lock()
	payload, ok := g.pending[m.id]
	delete(g.pending, m.id)
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: CoalescedRecv scheduled without its sub-message (edge %s)",
			ErrComm, op.spec.Key)
	}
	t, err := tensor.FromBytes(op.spec.Sig.DType, op.spec.Sig.Shape, payload)
	if err != nil {
		return err
	}
	env.recordRecv(op.spec.Key, len(payload))
	ctx.Output = t
	return nil
}
