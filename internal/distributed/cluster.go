package distributed

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/analyzer"
	"repro/internal/comm"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/rpc"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config parameterizes a cluster launch.
type Config struct {
	// Kind selects the communication mechanism.
	Kind Kind
	// ArenaBytes is the per-server registered-memory arena size
	// (default 64 MiB). The graph analyzer registers it once, §3.4.
	ArenaBytes int
	// ExecWorkers is the per-server executor worker count (default 4).
	ExecWorkers int
	// KernelWorkers sizes the process-wide compute-kernel pool shared by all
	// servers' tensor kernels (default GOMAXPROCS). Results are bit-identical
	// at any size.
	KernelWorkers int
	// RingCfg tunes the gRPC.RDMA ring transport.
	RingCfg transport.RingConfig
	// NumCQs and QPsPerPeer configure the RDMA devices (default 4/4, the
	// paper's evaluation setting).
	NumCQs, QPsPerPeer int
	// QPSlots, when positive, multiplexes each device's peer channels over
	// a bounded pool of QP slots (rdma.QPMux): at most QPSlots peers hold
	// live QP groups at a time, LRU-evicted as traffic shifts. QP state is
	// then O(tasks × QPSlots) cluster-wide instead of O(tasks²). Zero keeps
	// direct per-peer QPs.
	QPSlots int
	// LossyFabric runs statically placed edges over the per-tensor
	// selective-retransmit protocol (rdma.LossySender/LossyReceiver), the
	// configuration for fabrics that drop packets instead of NAKing them.
	// Dropped chunks are NACKed and re-sent individually; training results
	// stay bit-identical to a lossless run from the same seed.
	LossyFabric bool
	// PollTimeout aborts a step whose receive operators make no progress
	// (dead peer, partitioned fabric). Default 30s; negative disables.
	PollTimeout time.Duration
	// Transfer bounds every RDMA edge transfer: total deadline, retry
	// budget, and backoff for transient fabric faults. The zero value
	// selects the rdma package defaults (10s deadline, 64 retries).
	Transfer rdma.TransferOpts
	// Trace, when non-nil, records every server's operator executions into
	// one timeline (chrome trace-event format).
	Trace *trace.Recorder
}

func (c *Config) setDefaults() {
	if c.ArenaBytes == 0 {
		c.ArenaBytes = 64 << 20
	}
	if c.ExecWorkers == 0 {
		c.ExecWorkers = 4
	}
	if c.PollTimeout == 0 {
		c.PollTimeout = 30 * time.Second
	} else if c.PollTimeout < 0 {
		c.PollTimeout = 0
	}
}

// Server is one emulated machine: an RDMA device, a registered arena, a
// variable store, and an executor over its graph partition.
type Server struct {
	Task     string
	Dev      *rdma.Device
	ArenaMR  *rdma.MemRegion
	Arena    *alloc.Arena
	Policy   *analyzer.TracingPolicy
	VarStore *exec.VarStore
	Exec     *exec.Executor
	Env      *Env
	Metrics  *metrics.Comm
	// Hists holds the task's latency/size distributions (per-op execution,
	// per-edge bytes and transfer time, poll-wait, ring sends). Like Metrics
	// it is carried across a recovery restart, so the books stay balanced
	// over the task's whole lifetime, rebuilds included.
	Hists *metrics.Set
	// Mux, when Config.QPSlots is set, multiplexes this device's peer
	// channels over a bounded QP-slot pool; senders and receivers lease
	// lanes through it per transfer attempt.
	Mux *rdma.QPMux

	rpcSrv  *rpc.Server
	rpcAddr string

	descMu     sync.Mutex
	descs      map[string][]byte // edge key -> marshaled slot descriptor
	qpCounters map[string]int    // per-peer round-robin QP assignment
	// edgeMRs are the regions whose lifetime is one edge-setup round
	// (receive slots, dyn metadata and scratch blocks, coalesce batches).
	// teardownEdges frees them, so a transfer surviving from an aborted
	// iteration faults on region lookup instead of corrupting rebuilt state.
	// Staging slots are deliberately NOT here: variables live in them.
	edgeMRs []*rdma.MemRegion
}

// Cluster is an in-process multi-server deployment of one partitioned
// data-flow graph.
type Cluster struct {
	cfg    Config
	fabric *rdma.Fabric
	result *analyzer.Result

	// mu guards the servers map and the Exec pointers inside: recovery
	// replaces both while detector goroutines and metric readers look on.
	mu       sync.RWMutex
	servers  map[string]*Server
	recovery *Recovery // non-nil once EnableRecovery ran; Close stops it

	// stepStats accumulates per-task step-time breakdowns. It lives on the
	// cluster — not the executor — so the numbers survive recovery replacing
	// executors. Keys are fixed at Launch; the StepStat values are internally
	// synchronized.
	stepStats map[string]*metrics.StepStat
}

// edgeDescMethod and edgeScratchMethod are the vanilla-RPC methods used for
// address distribution (§3.1: "a simple vanilla RPC mechanism ... for this
// auxiliary purpose of distributing remote memory addresses").
const (
	edgeDescMethod    = "edge.desc"
	edgeScratchMethod = "edge.scratch"
	edgeCoalAckMethod = "edge.coalack"
	edgeNackMethod    = "edge.nack"
	rpcTimeout        = 10 * time.Second
)

// Launch partitions the builder's graph with the mechanism's Send/Recv
// operators, creates one server per task, performs address distribution,
// and builds per-partition executors. Variables must then be initialized
// with InitVariable before the first Step.
func Launch(b *graph.Builder, cfg Config) (*Cluster, error) {
	cfg.setDefaults()
	factory := commFactory(cfg.Kind, cfg.Transfer.CoalesceThreshold)
	res, err := analyzer.Partition(b, factory, analyzer.WithPostHook(orderSendsBeforeUpdates))
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, fabric: rdma.NewFabric(), servers: make(map[string]*Server),
		stepStats: make(map[string]*metrics.StepStat)}
	for _, task := range res.Tasks {
		c.stepStats[task] = &metrics.StepStat{}
	}
	for _, task := range res.Tasks {
		srv, err := c.newServer(task)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers[task] = srv
	}
	c.result = res
	if cfg.Kind.UsesRPC() {
		err = c.setupRPCEdges(res)
	} else {
		err = c.setupRDMAEdges(res)
	}
	if err != nil {
		c.Close()
		return nil, err
	}
	for _, task := range res.Tasks {
		if err := c.buildExecutor(c.servers[task]); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// buildExecutor (re)builds one server's executor over its partition. The
// assignment is made under the cluster lock because recovery swaps executors
// while detector goroutines may be aborting them.
func (c *Cluster) buildExecutor(srv *Server) error {
	ex, err := exec.New(c.result.Graph, exec.Config{
		Task:          srv.Task,
		Workers:       c.cfg.ExecWorkers,
		KernelWorkers: c.cfg.KernelWorkers,
		Vars:          srv.VarStore,
		Policy:        srv.Policy,
		Env:           srv.Env,
		PollTimeout:   c.cfg.PollTimeout,
		Trace:         c.cfg.Trace,
		Hists:         srv.Hists,
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	srv.Exec = ex
	c.mu.Unlock()
	return nil
}

func (c *Cluster) newServer(task string) (*Server, error) {
	dev, err := rdma.CreateDevice(c.fabric, rdma.Config{
		Endpoint:   task,
		NumCQs:     c.cfg.NumCQs,
		QPsPerPeer: c.cfg.QPsPerPeer,
	})
	if err != nil {
		return nil, err
	}
	arenaMR, err := dev.AllocateMemRegion(c.cfg.ArenaBytes)
	if err != nil {
		return nil, err
	}
	arena := alloc.NewArena(arenaMR.Bytes())
	policy := analyzer.NewTracingPolicy(arena, c.cfg.Kind.ZeroCopy())
	m := &metrics.Comm{}
	hists := &metrics.Set{}
	srv := &Server{
		Task:     task,
		Dev:      dev,
		ArenaMR:  arenaMR,
		Arena:    arena,
		Policy:   policy,
		VarStore: exec.NewVarStore(),
		Metrics:  m,
		Hists:    hists,
		descs:    make(map[string][]byte),
	}
	srv.Env = newEnv(task, c.cfg.Kind, policy, m, arena, arenaMR)
	srv.Env.Xfer = c.cfg.Transfer
	srv.Env.Hists = hists
	if c.cfg.QPSlots > 0 {
		mux, err := rdma.NewQPMux(dev, c.cfg.QPSlots, c.muxLanes())
		if err != nil {
			return nil, err
		}
		srv.Mux = mux
	}
	dev.RegisterRPC(edgeDescMethod, func(from string, req []byte) ([]byte, error) {
		srv.descMu.Lock()
		defer srv.descMu.Unlock()
		d, ok := srv.descs[string(req)]
		if !ok {
			return nil, fmt.Errorf("%w: no slot descriptor for edge %q on %s", ErrSetup, req, task)
		}
		return d, nil
	})
	dev.RegisterRPC(edgeScratchMethod, func(from string, req []byte) ([]byte, error) {
		key, desc, err := splitKeyPayload(req)
		if err != nil {
			return nil, err
		}
		scratch, err := rdma.UnmarshalDynSlotDesc(desc)
		if err != nil {
			return nil, err
		}
		st, err := srv.Env.dynRecvState(key)
		if err != nil {
			return nil, err
		}
		st.mu.Lock()
		st.senderScratch = scratch
		st.mu.Unlock()
		return nil, nil
	})
	dev.RegisterRPC(edgeCoalAckMethod, func(from string, req []byte) ([]byte, error) {
		key, desc, err := splitKeyPayload(req)
		if err != nil {
			return nil, err
		}
		ack, err := rdma.UnmarshalDynSlotDesc(desc)
		if err != nil {
			return nil, err
		}
		g, err := srv.Env.coalRecvGroup(key)
		if err != nil {
			return nil, err
		}
		g.mu.Lock()
		g.senderAck, g.haveAck = ack, true
		g.mu.Unlock()
		return nil, nil
	})
	dev.RegisterRPC(edgeNackMethod, func(from string, req []byte) ([]byte, error) {
		key, desc, err := splitKeyPayload(req)
		if err != nil {
			return nil, err
		}
		scratch, err := rdma.UnmarshalDynSlotDesc(desc)
		if err != nil {
			return nil, err
		}
		st, err := srv.Env.staticRecvState(key)
		if err != nil {
			return nil, err
		}
		if st.lossy == nil {
			return nil, fmt.Errorf("%w: edge %q on %s is not lossy", ErrSetup, key, task)
		}
		st.lossy.SetSenderScratch(scratch)
		return nil, nil
	})
	// Lease pings ride the same vanilla-RPC seam as address distribution
	// (§3.1): membership is control-plane traffic. Registered
	// unconditionally so a restarted task resumes answering immediately.
	dev.RegisterRPC(leasePingMethod, func(from string, req []byte) ([]byte, error) {
		return req, nil
	})
	return srv, nil
}

// orderSendsBeforeUpdates adds control dependencies so that a variable's
// outbound weight send happens before ApplySGD mutates it in place: within
// iteration i workers receive θᵢ while the server transitions to θᵢ₊₁,
// exactly the synchronous parameter-server schedule. The paper relies on
// "the control dependency of the loop in the graph" for the same ordering.
func orderSendsBeforeUpdates(b *graph.Builder, edges []analyzer.EdgeSpec, sends map[string]*graph.Node) error {
	applyByVar := make(map[string][]*graph.Node)
	for _, n := range b.Nodes() {
		if varName, ok := graph.UpdatedVariable(n.Op()); ok {
			applyByVar[varName] = append(applyByVar[varName], n)
		}
	}
	for _, e := range edges {
		send := sends[e.Key]
		for _, apply := range applyByVar[e.SrcNode] {
			if apply.Task() == e.SrcTask {
				b.ControlDep(apply, send)
			}
		}
	}
	return b.Err()
}

func commFactory(kind Kind, coalesceThreshold int) analyzer.CommFactory {
	return func(spec analyzer.EdgeSpec) (graph.Op, graph.Op, error) {
		if kind.UsesRPC() {
			return &rpcSendOp{spec: spec}, &rpcRecvOp{spec: spec}, nil
		}
		if coalescible(spec, coalesceThreshold) {
			return &coalescedSendOp{spec: spec}, &coalescedRecvOp{spec: spec}, nil
		}
		if spec.Sig.Static {
			return &rdmaSendOp{spec: spec}, &rdmaRecvOp{spec: spec}, nil
		}
		return &rdmaSendDynOp{spec: spec}, &rdmaRecvDynOp{spec: spec}, nil
	}
}

// coalescible reports whether an edge rides the coalesced batch path: a
// statically placed tensor below the configured threshold. The predicate is
// shared by the operator factory and setupRDMAEdges so op kinds and edge
// state never disagree.
func coalescible(spec analyzer.EdgeSpec, threshold int) bool {
	return threshold > 0 && spec.Sig.Static && spec.Sig.ByteSize() < threshold
}

// coalPlan is the deterministic batch layout for one (src, dst) task pair:
// sub-message ids are assigned by the edge's position in res.Edges, so both
// setup phases — and every server — derive identical layouts independently.
type coalPlan struct {
	key              string
	srcTask, dstTask string
	members          []analyzer.EdgeSpec // index == sub-message id
	capacity         int                 // batch framing bytes for a full batch
}

func coalPlans(res *analyzer.Result, threshold int) []*coalPlan {
	var plans []*coalPlan
	byPair := make(map[string]*coalPlan)
	for _, e := range res.Edges {
		if !coalescible(e, threshold) {
			continue
		}
		key := "coalesce/" + e.SrcTask + "->" + e.DstTask
		// Collective phases must not share a batch: a ring's reduce hop
		// k->k+1 transitively feeds the broadcast hop over the same task
		// pair, and a shared batch only flushes once ALL members staged —
		// a cycle that would deadlock the step. Keying the group by the
		// producing node's collective phase keeps each batch acyclic.
		if ph := comm.CoalescePhase(e.SrcNode); ph != "" {
			key += "#" + ph
		}
		p, ok := byPair[key]
		if !ok {
			p = &coalPlan{key: key, srcTask: e.SrcTask, dstTask: e.DstTask,
				capacity: wire.BatchHeaderSize}
			byPair[key] = p
			plans = append(plans, p)
		}
		p.members = append(p.members, e)
		p.capacity += wire.SubMsgSize(e.Sig.ByteSize())
	}
	return plans
}

// setupRDMAEdges performs the two setup phases: receivers preallocate slots
// and publish descriptors; senders fetch descriptors, build their staging
// or scratch state, and (for dynamic edges) push their scratch descriptor
// back for the ack path. With QP muxing on, every setup-time channel is a
// short-lived lease, so even the setup round never exceeds the slot cap.
func (c *Cluster) setupRDMAEdges(res *analyzer.Result) error {
	plans := coalPlans(res, c.cfg.Transfer.CoalesceThreshold)
	// Phase A: receiver-side preallocation.
	for _, e := range res.Edges {
		if coalescible(e, c.cfg.Transfer.CoalesceThreshold) {
			continue // handled per pair below
		}
		if err := c.setupRecvEdge(c.servers[e.DstTask], e); err != nil {
			return err
		}
	}
	// Phase A': coalesced batch slots, one per (src, dst) pair.
	for _, p := range plans {
		if err := c.setupCoalRecvGroup(c.servers[p.dstTask], p); err != nil {
			return err
		}
	}
	// Phase B: sender-side setup via address distribution.
	for _, e := range res.Edges {
		if coalescible(e, c.cfg.Transfer.CoalesceThreshold) {
			continue
		}
		if err := c.setupSendEdge(c.servers[e.SrcTask], e); err != nil {
			return err
		}
	}
	// Phase B': coalesced batch senders, plus ack-word distribution back to
	// the receiver group.
	for _, p := range plans {
		if err := c.setupCoalSendGroup(c.servers[p.srcTask], p); err != nil {
			return err
		}
	}
	return nil
}

// setupRecvEdge builds one edge's receiver-side state and publishes its
// slot descriptor.
func (c *Cluster) setupRecvEdge(dst *Server, e analyzer.EdgeSpec) error {
	if e.Sig.Static {
		payload := e.Sig.ByteSize()
		if c.cfg.LossyFabric {
			mr, err := dst.allocEdgeMR(rdma.LossySlotSize(payload))
			if err != nil {
				return fmt.Errorf("edge %s: %w", e.Key, err)
			}
			ch, release, err := c.chanFor(dst, e.SrcTask)
			if err != nil {
				return fmt.Errorf("edge %s: %w", e.Key, err)
			}
			defer release()
			m := dst.Metrics
			recv, err := rdma.NewLossyReceiver(ch, mr, 0, payload, edgeTensorID(e.Key),
				rdma.LossyReceiverConfig{
					OnNack: func(int) { m.AddNack() },
					Source: muxSource(dst),
				})
			if err != nil {
				return fmt.Errorf("edge %s: %w", e.Key, err)
			}
			dst.Env.mu.Lock()
			dst.Env.staticRecv[e.Key] = &staticRecvState{spec: e, lossy: recv}
			dst.Env.mu.Unlock()
			dst.putDesc(e.Key, recv.Desc().Marshal())
			return nil
		}
		mr, err := dst.allocEdgeMR(rdma.StaticSlotSize(payload))
		if err != nil {
			return fmt.Errorf("edge %s: %w", e.Key, err)
		}
		recv, err := rdma.NewStaticReceiver(mr, 0, payload)
		if err != nil {
			return fmt.Errorf("edge %s: %w", e.Key, err)
		}
		dst.Env.mu.Lock()
		dst.Env.staticRecv[e.Key] = &staticRecvState{spec: e, recv: recv}
		dst.Env.mu.Unlock()
		dst.putDesc(e.Key, recv.Desc().Marshal())
		return nil
	}
	metaMR, err := dst.allocEdgeMR(rdma.DynMetaSize)
	if err != nil {
		return fmt.Errorf("edge %s: %w", e.Key, err)
	}
	ch, release, err := c.chanFor(dst, e.SrcTask)
	if err != nil {
		return fmt.Errorf("edge %s: %w", e.Key, err)
	}
	defer release()
	recv, err := rdma.NewDynReceiver(ch, metaMR, 0)
	if err != nil {
		return fmt.Errorf("edge %s: %w", e.Key, err)
	}
	if dst.Mux != nil {
		// Muxed: every fetch leases its lanes per attempt.
		recv.SetLaneSource(dst.Mux)
	} else {
		// Striping: the dyn fetch is receiver-driven, so the extra QP
		// lanes live on the receiver.
		for i := 1; i < c.stripeLanes(); i++ {
			lane, err := dst.Dev.GetChannel(e.SrcTask, dst.nextQP(e.SrcTask, c.cfg.QPsPerPeer))
			if err != nil {
				return fmt.Errorf("edge %s lane %d: %w", e.Key, i, err)
			}
			if err := recv.AddLane(lane); err != nil {
				return fmt.Errorf("edge %s lane %d: %w", e.Key, i, err)
			}
		}
	}
	dst.Env.mu.Lock()
	dst.Env.dynRecv[e.Key] = &dynRecvState{spec: e, recv: recv}
	dst.Env.mu.Unlock()
	dst.putDesc(e.Key, recv.Desc().Marshal())
	return nil
}

// setupSendEdge builds one edge's sender-side state: descriptor fetch via
// address distribution, staging/scratch wiring, stripe lanes or mux source,
// and — on a lossy fabric — the NACK-scratch push back to the receiver.
func (c *Cluster) setupSendEdge(src *Server, e analyzer.EdgeSpec) error {
	ch, release, err := c.chanFor(src, e.DstTask)
	if err != nil {
		return fmt.Errorf("edge %s: %w", e.Key, err)
	}
	defer release()
	// Address distribution is idempotent (the handler only reads the
	// published descriptor), so transient faults are retried.
	descBytes, err := ch.CallRetry(edgeDescMethod, []byte(e.Key),
		rdma.TransferOpts{Deadline: rpcTimeout})
	if err != nil {
		return fmt.Errorf("edge %s: %w", e.Key, err)
	}
	if e.Sig.Static {
		desc, err := rdma.UnmarshalStaticSlotDesc(descBytes)
		if err != nil {
			return fmt.Errorf("edge %s: %w", e.Key, err)
		}
		slot, err := src.stagingFor(e.SrcNode, e.Sig)
		if err != nil {
			return fmt.Errorf("edge %s: %w", e.Key, err)
		}
		sender, err := rdma.NewStaticSender(ch, slot.mr, 0, desc)
		if err != nil {
			return fmt.Errorf("edge %s: %w", e.Key, err)
		}
		if src.Mux != nil {
			sender.SetLaneSource(src.Mux)
		} else {
			// Striping: extra sender-side QP lanes for the write path.
			for i := 1; i < c.stripeLanes(); i++ {
				lane, err := src.Dev.GetChannel(e.DstTask, src.nextQP(e.DstTask, c.cfg.QPsPerPeer))
				if err != nil {
					return fmt.Errorf("edge %s lane %d: %w", e.Key, i, err)
				}
				if err := sender.AddLane(lane); err != nil {
					return fmt.Errorf("edge %s lane %d: %w", e.Key, i, err)
				}
			}
		}
		st := &staticSendState{spec: e, slot: slot, sender: sender}
		if c.cfg.LossyFabric {
			ls, err := rdma.NewLossySender(sender, edgeTensorID(e.Key))
			if err != nil {
				return fmt.Errorf("edge %s: %w", e.Key, err)
			}
			// The receiver cannot NACK until it knows where the sender's
			// NACK block lives; push it over the same idempotent RPC seam.
			req := joinKeyPayload(e.Key, ls.NackScratch().Marshal())
			if _, err := ch.CallRetry(edgeNackMethod, req,
				rdma.TransferOpts{Deadline: rpcTimeout}); err != nil {
				ls.Close()
				return fmt.Errorf("edge %s nack distribution: %w", e.Key, err)
			}
			st.lossy = ls
		}
		src.Env.mu.Lock()
		src.Env.staticSend[e.Key] = st
		src.Env.mu.Unlock()
		if c.cfg.Kind.ZeroCopy() {
			src.Policy.BindStaging(e.SrcNode, slot.tensor)
		}
		return nil
	}
	desc, err := rdma.UnmarshalDynSlotDesc(descBytes)
	if err != nil {
		return fmt.Errorf("edge %s: %w", e.Key, err)
	}
	scratchMR, err := src.allocEdgeMR(rdma.DynMetaSize)
	if err != nil {
		return fmt.Errorf("edge %s: %w", e.Key, err)
	}
	sender, err := rdma.NewDynSender(ch, scratchMR, 0, desc)
	if err != nil {
		return fmt.Errorf("edge %s: %w", e.Key, err)
	}
	if src.Mux != nil {
		sender.SetLaneSource(src.Mux)
	}
	src.Env.mu.Lock()
	src.Env.dynSend[e.Key] = &dynSendState{spec: e, sender: sender, dev: src.Dev}
	src.Env.mu.Unlock()
	req := joinKeyPayload(e.Key, sender.ScratchDesc().Marshal())
	// Idempotent too: the handler overwrites the scratch descriptor
	// with the same value.
	if _, err := ch.CallRetry(edgeScratchMethod, req,
		rdma.TransferOpts{Deadline: rpcTimeout}); err != nil {
		return fmt.Errorf("edge %s scratch distribution: %w", e.Key, err)
	}
	return nil
}

// setupCoalRecvGroup builds one pair's coalesced batch slot.
func (c *Cluster) setupCoalRecvGroup(dst *Server, p *coalPlan) error {
	mr, err := dst.allocEdgeMR(rdma.StaticSlotSize(p.capacity))
	if err != nil {
		return fmt.Errorf("coalesce group %s: %w", p.key, err)
	}
	ch, release, err := c.chanFor(dst, p.srcTask)
	if err != nil {
		return fmt.Errorf("coalesce group %s: %w", p.key, err)
	}
	defer release()
	recv, err := rdma.NewCoalescedReceiver(ch, mr, 0, p.capacity)
	if err != nil {
		return fmt.Errorf("coalesce group %s: %w", p.key, err)
	}
	if dst.Mux != nil {
		recv.SetLaneSource(dst.Mux)
	}
	g := &coalRecvGroup{key: p.key, recv: recv, pending: make(map[uint32][]byte)}
	dst.Env.mu.Lock()
	dst.Env.coalRecvGroups[p.key] = g
	for id, e := range p.members {
		dst.Env.coalRecvEdges[e.Key] = &coalRecvEdge{spec: e, group: g, id: uint32(id)}
	}
	dst.Env.mu.Unlock()
	dst.putDesc(p.key, recv.Desc().Marshal())
	return nil
}

// setupCoalSendGroup builds one pair's coalesced batch sender and pushes
// the reuse-ack word back to the receiver group.
func (c *Cluster) setupCoalSendGroup(src *Server, p *coalPlan) error {
	ch, release, err := c.chanFor(src, p.dstTask)
	if err != nil {
		return fmt.Errorf("coalesce group %s: %w", p.key, err)
	}
	defer release()
	descBytes, err := ch.CallRetry(edgeDescMethod, []byte(p.key),
		rdma.TransferOpts{Deadline: rpcTimeout})
	if err != nil {
		return fmt.Errorf("coalesce group %s: %w", p.key, err)
	}
	desc, err := rdma.UnmarshalCoalescedSlotDesc(descBytes)
	if err != nil {
		return fmt.Errorf("coalesce group %s: %w", p.key, err)
	}
	mr, err := src.allocEdgeMR(rdma.StaticSlotSize(desc.Capacity) + rdma.FlagWordSize)
	if err != nil {
		return fmt.Errorf("coalesce group %s: %w", p.key, err)
	}
	sender, err := rdma.NewCoalescedSender(ch, mr, 0, desc)
	if err != nil {
		return fmt.Errorf("coalesce group %s: %w", p.key, err)
	}
	if src.Mux != nil {
		sender.SetLaneSource(src.Mux)
	}
	g := &coalSendGroup{key: p.key, sender: sender, members: len(p.members)}
	src.Env.mu.Lock()
	src.Env.coalSendGroups[p.key] = g
	for id, e := range p.members {
		src.Env.coalSendEdges[e.Key] = &coalSendEdge{spec: e, group: g, id: uint32(id)}
	}
	src.Env.mu.Unlock()
	req := joinKeyPayload(p.key, sender.AckDesc().Marshal())
	// Idempotent: the handler overwrites the ack descriptor in place.
	if _, err := ch.CallRetry(edgeCoalAckMethod, req,
		rdma.TransferOpts{Deadline: rpcTimeout}); err != nil {
		return fmt.Errorf("coalesce group %s ack distribution: %w", p.key, err)
	}
	return nil
}

// stripeLanes is how many QP lanes each striped transfer edge gets
// (clamped the same way the transfer layer clamps TransferOpts.Stripes).
func (c *Cluster) stripeLanes() int {
	s := c.cfg.Transfer.Stripes
	if s > rdma.MaxStripes {
		s = rdma.MaxStripes
	}
	return s
}

// muxLanes is the per-lease lane count when QP muxing is on: the stripe
// lane count, at least 1, clamped to the device's QPs per peer (a mux slot
// can hand out at most one peer connection's worth of QPs).
func (c *Cluster) muxLanes() int {
	lanes := c.stripeLanes()
	if lanes < 1 {
		lanes = 1
	}
	qpp := c.cfg.QPsPerPeer
	if qpp == 0 {
		qpp = 4
	}
	if lanes > qpp {
		lanes = qpp
	}
	return lanes
}

// chanFor resolves a channel to peer for setup-time traffic: a short mux
// lease (released via the returned func) when muxing is on, else a direct
// round-robin QP. Senders and receivers built on a leased channel must be
// given the mux as their lane source before the lease is released — after
// that the constructor channel only names the peer, and every transfer
// re-leases live lanes per attempt.
func (c *Cluster) chanFor(s *Server, peer string) (*rdma.Channel, func(), error) {
	if s.Mux != nil {
		lanes, release, err := s.Mux.AcquireLanes(peer)
		if err != nil {
			return nil, nil, err
		}
		return lanes[0], release, nil
	}
	ch, err := s.Dev.GetChannel(peer, s.nextQP(peer, c.cfg.QPsPerPeer))
	if err != nil {
		return nil, nil, err
	}
	return ch, func() {}, nil
}

// muxSource returns the server's mux as a lane source, or a nil interface
// when muxing is off (a plain `s.Mux` would be a typed nil the rdma layer
// cannot distinguish from a live source).
func muxSource(s *Server) rdma.LaneSource {
	if s.Mux == nil {
		return nil
	}
	return s.Mux
}

// edgeTensorID derives the stable non-zero tensor identity the lossy
// protocol tags every chunk with from the edge key. Both ends hash the
// same key, so no extra exchange is needed.
func edgeTensorID(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	id := h.Sum64()
	if id == 0 {
		id = 1
	}
	return id
}

// stagingFor returns (or creates) the shared sender staging slot for a
// source node; fan-out edges to several destinations share it.
func (s *Server) stagingFor(srcNode string, sig graph.Sig) (*stagingSlot, error) {
	s.Env.mu.Lock()
	defer s.Env.mu.Unlock()
	if slot, ok := s.Env.stagings[srcNode]; ok {
		return slot, nil
	}
	slot, err := newStagingSlot(s.Dev, sig.DType, sig.Shape)
	if err != nil {
		return nil, err
	}
	s.Env.stagings[srcNode] = slot
	return slot, nil
}

// allocEdgeMR allocates a region scoped to the current edge-setup round and
// records it for teardownEdges to free.
func (s *Server) allocEdgeMR(size int) (*rdma.MemRegion, error) {
	mr, err := s.Dev.AllocateMemRegion(size)
	if err != nil {
		return nil, err
	}
	s.descMu.Lock()
	s.edgeMRs = append(s.edgeMRs, mr)
	s.descMu.Unlock()
	return mr, nil
}

func (s *Server) putDesc(key string, d []byte) {
	s.descMu.Lock()
	defer s.descMu.Unlock()
	s.descs[key] = d
}

// nextQP spreads edges over the QPs to a peer in round-robin order,
// following the paper's load-balancing guidance (§3.1).
func (s *Server) nextQP(peer string, qpsPerPeer int) int {
	if qpsPerPeer == 0 {
		qpsPerPeer = 4
	}
	s.descMu.Lock()
	defer s.descMu.Unlock()
	if s.qpCounters == nil {
		s.qpCounters = make(map[string]int)
	}
	idx := s.qpCounters[peer] % qpsPerPeer
	s.qpCounters[peer]++
	return idx
}

// setupRPCEdges builds the gRPC-baseline data path: one RPC server per
// machine on the chosen substrate, one client per (src, dst) pair.
func (c *Cluster) setupRPCEdges(res *analyzer.Result) error {
	// ringCfgFor wires the server's outbound ring-send latency histogram
	// into the transport hook (fragmentation + credit waits + retries).
	ringCfgFor := func(srv *Server) transport.RingConfig {
		cfg := c.cfg.RingCfg
		h := srv.Hists.Hist(metrics.HistRingSendNs)
		cfg.OnSend = func(bytes int, d time.Duration) { h.Record(d.Nanoseconds()) }
		return cfg
	}
	listenNet := func(srv *Server) transport.Network {
		if c.cfg.Kind == GRPCTCP {
			return transport.TCPNetwork()
		}
		return transport.RingNetwork(srv.Dev, ringCfgFor(srv))
	}
	for _, task := range res.Tasks {
		srv := c.servers[task]
		l, err := listenNet(srv).Listen("")
		if err != nil {
			return err
		}
		srv.rpcSrv = rpc.NewServer(l)
		registerPushService(srv.Env, srv.rpcSrv.Register)
		srv.rpcSrv.Start()
		srv.rpcAddr = srv.rpcSrv.Addr()
	}
	for _, e := range res.Edges {
		src, dst := c.servers[e.SrcTask], c.servers[e.DstTask]
		src.Env.mu.Lock()
		_, have := src.Env.rpcClients[e.DstTask]
		src.Env.mu.Unlock()
		if have {
			continue
		}
		var net transport.Network
		if c.cfg.Kind == GRPCTCP {
			net = transport.TCPNetwork()
		} else {
			net = transport.RingNetwork(src.Dev, ringCfgFor(src))
		}
		client, err := rpc.Dial(net, dst.rpcAddr)
		if err != nil {
			return fmt.Errorf("edge %s: dial %s: %w", e.Key, dst.rpcAddr, err)
		}
		src.Env.mu.Lock()
		src.Env.rpcClients[e.DstTask] = client
		src.Env.mu.Unlock()
	}
	return nil
}

// InitVariable creates a variable's backing tensor on its server, placing
// it inside the sender staging slot when the zero-copy analysis decided the
// variable is transferred (so weight pushes need no copy at all), and calls
// init to fill it.
func (c *Cluster) InitVariable(name string, init func(*tensor.Tensor)) error {
	node, err := c.result.Graph.Node(name)
	if err != nil {
		return err
	}
	if !graph.IsVariable(node) {
		return fmt.Errorf("%w: %q is not a variable", ErrSetup, name)
	}
	srv := c.Server(node.Task())
	if srv == nil {
		return fmt.Errorf("%w: no server for task %q", ErrSetup, node.Task())
	}
	var t *tensor.Tensor
	srv.Env.mu.Lock()
	slot, staged := srv.Env.stagings[name]
	srv.Env.mu.Unlock()
	if staged && c.cfg.Kind.ZeroCopy() {
		t = slot.tensor
	} else {
		sig := node.Sig()
		t = tensor.New(sig.DType, sig.Shape...)
	}
	if init != nil {
		init(t)
	}
	return srv.VarStore.Create(name, t)
}

// Step runs one synchronous iteration on every server concurrently. feeds
// and fetches are keyed by task; the returned values mirror fetches.
func (c *Cluster) Step(iter int, feeds map[string]map[string]*tensor.Tensor,
	fetches map[string][]string) (map[string]map[string]*tensor.Tensor, error) {
	type result struct {
		task string
		out  map[string]*tensor.Tensor
		err  error
	}
	c.mu.RLock()
	execs := make(map[string]*exec.Executor, len(c.servers))
	for task, srv := range c.servers {
		execs[task] = srv.Exec
	}
	c.mu.RUnlock()
	ch := make(chan result, len(execs))
	for task, ex := range execs {
		go func(task string, ex *exec.Executor) {
			out, err := ex.Run(iter, feeds[task], fetches[task]...)
			ch <- result{task: task, out: out, err: err}
		}(task, ex)
	}
	outs := make(map[string]map[string]*tensor.Tensor, len(execs))
	var firstErr error
	for range execs {
		r := <-ch
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("task %s: %w", r.task, r.err)
		}
		if r.err == nil {
			// Fold the completed step into the task's profile. Only clean
			// steps count — an aborted iteration's wall time says nothing
			// about steady-state step cost.
			if st := c.stepStats[r.task]; st != nil {
				br := execs[r.task].LastRun()
				st.Observe(br)
				if srv := c.Server(r.task); srv != nil {
					srv.Hists.Hist(metrics.HistStepNs).Record(br.Wall.Nanoseconds())
				}
			}
		}
		outs[r.task] = r.out
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}

// StepSummaries returns each task's accumulated step-time profile: wall-time
// distribution plus the compute/comm/poll-wait/idle breakdown. The stats
// accumulate across recovery rebuilds.
func (c *Cluster) StepSummaries() map[string]metrics.StepSummary {
	out := make(map[string]metrics.StepSummary, len(c.stepStats))
	for task, st := range c.stepStats {
		out[task] = st.Summary()
	}
	return out
}

// HistSnapshots returns each task's histogram registry snapshot (per-op
// execution latency, per-edge bytes and transfer latency, poll-wait, step
// wall time).
func (c *Cluster) HistSnapshots() map[string]metrics.SetSnapshot {
	srvs := c.serversSnapshot()
	out := make(map[string]metrics.SetSnapshot, len(srvs))
	for task, srv := range srvs {
		out[task] = srv.Hists.Snapshot()
	}
	return out
}

// abortAll fails every server's in-flight iteration with cause.
func (c *Cluster) abortAll(cause error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, srv := range c.servers {
		if srv.Exec != nil {
			srv.Exec.Abort(cause)
		}
	}
}

// serversSnapshot returns a stable view of the servers map.
func (c *Cluster) serversSnapshot() map[string]*Server {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*Server, len(c.servers))
	for t, s := range c.servers {
		out[t] = s
	}
	return out
}

// KillTask emulates a task process crash: its device drops off the fabric
// (queued and future work fails with ErrClosed, peers see ErrNoSuchPeer),
// its in-flight iteration aborts, and its in-memory state — variable store
// included — is gone for good. Only recovery can bring the task back, by
// restarting it and rolling the cluster to the last checkpoint.
func (c *Cluster) KillTask(task string) error {
	c.mu.RLock()
	srv := c.servers[task]
	c.mu.RUnlock()
	if srv == nil {
		return fmt.Errorf("%w: no server for task %q", ErrSetup, task)
	}
	if srv.rpcSrv != nil {
		srv.rpcSrv.Close()
	}
	srv.Dev.Close()
	return nil
}

// deadTasks lists tasks whose devices are closed (crashed or killed),
// sorted for determinism.
func (c *Cluster) deadTasks() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var dead []string
	for task, srv := range c.servers {
		if srv.Dev.Closed() {
			dead = append(dead, task)
		}
	}
	sort.Strings(dead)
	return dead
}

// severPeer disconnects every live server from a dead endpoint's QPs so no
// stale queued work request can chase the restarted incarnation, and so
// blocked retry loops fail fast with ErrClosed instead of spinning.
func (c *Cluster) severPeer(task string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for name, srv := range c.servers {
		if name != task && !srv.Dev.Closed() {
			if srv.Mux != nil {
				// Drop the mux's slot first so a later lease rebuilds fresh
				// QPs instead of handing out the severed group.
				srv.Mux.Invalidate(task)
			}
			srv.Dev.ClosePeer(task)
		}
	}
}

// restartTask replaces a crashed server with a fresh one under the same
// endpoint name (the old registration left the fabric on Close): new device,
// arena, environment, and an empty variable store. Callers then rebuild
// edges, the executor, and variables (from a checkpoint).
func (c *Cluster) restartTask(task string) error {
	c.mu.RLock()
	old := c.servers[task]
	c.mu.RUnlock()
	if old == nil {
		return fmt.Errorf("%w: no server for task %q", ErrSetup, task)
	}
	if !old.Dev.Closed() {
		return fmt.Errorf("%w: task %q is still alive", ErrSetup, task)
	}
	srv, err := c.newServer(task)
	if err != nil {
		return err
	}
	// The restarted incarnation keeps the task's metrics and histograms: the
	// counters describe the task, not the process incarnation, and the
	// observability consistency invariants (histogram sums == byte counters)
	// must hold across rebuilds.
	srv.Metrics = old.Metrics
	srv.Env.Metrics = old.Metrics
	srv.Hists = old.Hists
	srv.Env.Hists = old.Hists
	c.mu.Lock()
	c.servers[task] = srv
	c.mu.Unlock()
	return nil
}

// teardownEdges drops every live server's per-round edge state: operator
// lookup maps, dynamic receivers (with their ack regions and deferred arena
// buffers), dynamic-send scratch, and all tracked edge regions. Staging
// slots survive — variables live in them, and §3.2 address stability only
// has to hold within one setup round, because rebuildEdges redistributes
// every descriptor.
func (c *Cluster) teardownEdges() {
	for _, srv := range c.serversSnapshot() {
		if srv.Dev.Closed() {
			continue
		}
		srv.Env.mu.Lock()
		staticSends := srv.Env.staticSend
		staticRecvs := srv.Env.staticRecv
		dynRecvs := srv.Env.dynRecv
		dynSends := srv.Env.dynSend
		coalSends := srv.Env.coalSendGroups
		srv.Env.staticSend = make(map[string]*staticSendState)
		srv.Env.staticRecv = make(map[string]*staticRecvState)
		srv.Env.dynSend = make(map[string]*dynSendState)
		srv.Env.dynRecv = make(map[string]*dynRecvState)
		srv.Env.coalSendGroups = make(map[string]*coalSendGroup)
		srv.Env.coalRecvGroups = make(map[string]*coalRecvGroup)
		srv.Env.coalSendEdges = make(map[string]*coalSendEdge)
		srv.Env.coalRecvEdges = make(map[string]*coalRecvEdge)
		srv.Env.mu.Unlock()
		// A group torn down mid-batch still holds completion callbacks from
		// the aborted step; fail them so no waiter is left parked forever.
		for _, g := range coalSends {
			g.failPending(fmt.Errorf("%w: coalesce group %s torn down for edge rebuild", ErrComm, g.key))
		}
		// Lossy endpoints own side regions (NACK scratch, staging) outside
		// the edgeMR list; Close frees them.
		for _, st := range staticSends {
			if st.lossy != nil {
				st.lossy.Close()
			}
		}
		for _, st := range staticRecvs {
			if st.lossy != nil {
				st.lossy.Close()
			}
		}
		for _, st := range dynRecvs {
			st.recv.Close()
			st.mu.Lock()
			pending := st.pendingFree
			st.pendingFree = nil
			st.mu.Unlock()
			for _, p := range pending {
				_ = srv.Arena.Free(p.buf)
			}
		}
		for _, st := range dynSends {
			if st.scratch != nil {
				st.dev.FreeMemRegion(st.scratch)
			}
		}
		srv.descMu.Lock()
		mrs := srv.edgeMRs
		srv.edgeMRs = nil
		srv.descs = make(map[string][]byte)
		srv.descMu.Unlock()
		for _, mr := range mrs {
			srv.Dev.FreeMemRegion(mr)
		}
	}
}

// rebuildEdges re-runs the full edge setup — receive slots, stripe lanes,
// coalesce groups, address distribution — over the current server set.
func (c *Cluster) rebuildEdges() error {
	c.teardownEdges()
	return c.setupRDMAEdges(c.result)
}

// Result exposes the partitioning outcome.
func (c *Cluster) Result() *analyzer.Result { return c.result }

// Fabric exposes the emulated network, for fault injection in tests.
func (c *Cluster) Fabric() *rdma.Fabric { return c.fabric }

// Server returns the server running the given task.
func (c *Cluster) Server(task string) *Server {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.servers[task]
}

// MetricsSnapshot returns per-task communication counters.
func (c *Cluster) MetricsSnapshot() map[string]metrics.CommSnapshot {
	srvs := c.serversSnapshot()
	out := make(map[string]metrics.CommSnapshot, len(srvs))
	for task, srv := range srvs {
		if srv.Mux != nil {
			st := srv.Mux.Stats()
			srv.Metrics.SetQPStats(st.ActiveSlots, st.ActiveLeases, st.Evictions, st.Busy)
		}
		out[task] = srv.Metrics.Snapshot()
	}
	return out
}

// VarTensor returns a variable's backing tensor (from whichever server owns
// it).
func (c *Cluster) VarTensor(name string) (*tensor.Tensor, error) {
	node, err := c.result.Graph.Node(name)
	if err != nil {
		return nil, err
	}
	srv := c.Server(node.Task())
	if srv == nil {
		return nil, fmt.Errorf("%w: no server for %q", ErrSetup, node.Task())
	}
	return srv.VarStore.VarTensor(name)
}

// Close tears the cluster down: the failure detector first (so teardown is
// not mistaken for a crash), then RPC clients and servers, then devices.
func (c *Cluster) Close() {
	c.mu.RLock()
	rec := c.recovery
	c.mu.RUnlock()
	if rec != nil {
		rec.stop()
	}
	for _, srv := range c.serversSnapshot() {
		srv.Env.mu.Lock()
		for _, cl := range srv.Env.rpcClients {
			cl.Close()
		}
		srv.Env.rpcClients = make(map[string]*rpc.Client)
		srv.Env.mu.Unlock()
		if srv.rpcSrv != nil {
			srv.rpcSrv.Close()
		}
	}
	for _, srv := range c.serversSnapshot() {
		srv.Dev.Close()
	}
}

func joinKeyPayload(key string, payload []byte) []byte {
	buf := make([]byte, 0, 2+len(key)+len(payload))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	return append(buf, payload...)
}

func splitKeyPayload(req []byte) (string, []byte, error) {
	if len(req) < 2 {
		return "", nil, fmt.Errorf("%w: short key/payload frame", ErrSetup)
	}
	n := int(binary.LittleEndian.Uint16(req))
	if len(req) < 2+n {
		return "", nil, fmt.Errorf("%w: truncated key/payload frame", ErrSetup)
	}
	return string(req[2 : 2+n]), req[2+n:], nil
}
