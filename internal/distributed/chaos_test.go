package distributed

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// runPSChaosTraining launches the standard PS-training cluster (same graph,
// init seed, and dataset seed as trainCluster so runs are bit-comparable),
// lets the caller install fault injection after launch, and runs iters
// synchronous steps. It returns the per-iteration losses, the final weight
// and bias values, the per-task metrics, and the first step error.
func runPSChaosTraining(t *testing.T, cfg Config, iters int,
	afterLaunch func(*Cluster)) ([]float32, []float32, []float32, map[string]metrics.CommSnapshot, error) {
	t.Helper()
	const workers, psCount, batch, in, classes = 2, 2, 8, 12, 4
	b, workerTasks := buildPSTraining(t, workers, psCount, batch, in, classes, 0.2)
	cl, err := Launch(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(99))
	if err := cl.InitVariable("w", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("bias", nil); err != nil {
		t.Fatal(err)
	}
	feeds := make(map[string]map[string]*tensor.Tensor)
	fetches := make(map[string][]string)
	dataRng := rand.New(rand.NewSource(7))
	for k, task := range workerTasks {
		x := tensor.New(tensor.Float32, batch, in)
		labels := tensor.New(tensor.Int32, batch)
		tensor.RandomUniform(x, dataRng, 1)
		tensor.RandomLabels(labels, dataRng, classes)
		feeds[task] = map[string]*tensor.Tensor{
			fmt.Sprintf("x%d", k):      x,
			fmt.Sprintf("labels%d", k): labels,
		}
		fetches[task] = []string{fmt.Sprintf("loss%d", k)}
	}
	if afterLaunch != nil {
		afterLaunch(cl)
	}

	var losses []float32
	for iter := 0; iter < iters; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			return losses, nil, nil, cl.MetricsSnapshot(), err
		}
		var sum float32
		for k, task := range workerTasks {
			sum += out[task][fmt.Sprintf("loss%d", k)].Float32s()[0]
		}
		losses = append(losses, sum/float32(workers))
	}
	wT, err := cl.VarTensor("w")
	if err != nil {
		t.Fatal(err)
	}
	biasT, err := cl.VarTensor("bias")
	if err != nil {
		t.Fatal(err)
	}
	w := append([]float32(nil), wT.Float32s()...)
	bias := append([]float32(nil), biasT.Float32s()...)
	return losses, w, bias, cl.MetricsSnapshot(), nil
}

// The headline chaos acceptance test: a 20-step PS-training run with 10% of
// transfers dropped plus a 100ms network partition mid-run must complete via
// retries — no hang, no step failure — and, because every injected fault
// strikes before any memory write, the final weights must be bit-identical
// to a fault-free run with the same seeds (no data corruption).
func TestChaosTrainingSurvivesDropsAndPartition(t *testing.T) {
	const steps = 20
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 8 * time.Second},
	}

	cleanLosses, cleanW, cleanBias, _, err := runPSChaosTraining(t, cfg, steps, nil)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}

	var inj *chaos.Injector
	losses, w, bias, ms, err := runPSChaosTraining(t, cfg, steps, func(cl *Cluster) {
		m := cl.Server("worker0").Metrics
		inj = chaos.New(chaos.Plan{
			Seed:     17,
			DropRate: 0.10,
			Script: []chaos.Event{
				{At: 5 * time.Millisecond, A: "ps0", B: "worker0", Heal: 100 * time.Millisecond},
			},
			Metrics: m,
		})
		inj.Install(cl.Fabric())
		inj.Start()
	})
	defer inj.Stop()
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if len(losses) != steps {
		t.Fatalf("completed %d/%d steps", len(losses), steps)
	}
	for i, l := range losses {
		if math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) {
			t.Fatalf("loss[%d] = %v", i, l)
		}
	}
	if last, first := losses[steps-1], losses[0]; last > first*0.7 {
		t.Errorf("loss did not drop under chaos: first %v last %v", first, last)
	}

	// Chaos actually happened and the mechanism layer retried through it.
	c := inj.Counters()
	if c.Injected[chaos.Drop] == 0 {
		t.Error("no transfer drops injected")
	}
	if c.Injected[chaos.PartitionEvent] < 2 {
		t.Errorf("partition script fired %d events, want apply+heal", c.Injected[chaos.PartitionEvent])
	}
	var retries, timeouts int64
	for _, s := range ms {
		retries += s.Retries
		timeouts += s.Timeouts
	}
	if retries == 0 {
		t.Error("no retries recorded despite injected drops")
	}
	if timeouts != 0 {
		t.Errorf("%d edges timed out; all faults should have healed within the budget", timeouts)
	}

	// No corruption: drops and partitions strike before any memory write, so
	// the retried run computes exactly the clean run's numbers.
	if len(w) != len(cleanW) || len(bias) != len(cleanBias) {
		t.Fatal("variable shapes diverged")
	}
	for i := range w {
		if w[i] != cleanW[i] {
			t.Fatalf("w[%d] = %v under chaos, %v clean (corruption or nondeterminism)", i, w[i], cleanW[i])
		}
	}
	for i := range bias {
		if bias[i] != cleanBias[i] {
			t.Fatalf("bias[%d] = %v under chaos, %v clean", i, bias[i], cleanBias[i])
		}
	}
	for i := range losses {
		if losses[i] != cleanLosses[i] {
			t.Fatalf("loss[%d] = %v under chaos, %v clean", i, losses[i], cleanLosses[i])
		}
	}
}

// A partition that never heals must fail the step with a typed timeout —
// ErrEdgeTimeout from a sender that exhausted its budget, or the executor's
// progress-based ErrPollTimeout on the starved receiver — within the
// configured deadlines, never hang the scheduler.
func TestChaosNeverHealingPartitionFailsStep(t *testing.T) {
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 2 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 1 * time.Second},
	}
	start := time.Now()
	_, _, _, ms, err := runPSChaosTraining(t, cfg, 20, func(cl *Cluster) {
		cl.Fabric().Partition("ps0", "worker0")
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("training succeeded across a never-healing partition")
	}
	if !errors.Is(err, ErrEdgeTimeout) && !errors.Is(err, exec.ErrPollTimeout) {
		t.Fatalf("err = %v, want ErrEdgeTimeout or exec.ErrPollTimeout", err)
	}
	// Bounded: edge deadline 1s, poll timeout 2s, plus scheduling slack.
	if elapsed > 30*time.Second {
		t.Fatalf("step failure took %v; deadlines were 1s/2s", elapsed)
	}
	if errors.Is(err, ErrEdgeTimeout) {
		var timeouts int64
		for _, s := range ms {
			timeouts += s.Timeouts
		}
		if timeouts == 0 {
			t.Error("edge timed out but no timeout was counted")
		}
	}
	t.Logf("step failed as expected after %v: %v", elapsed, err)
}
