package distributed

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/graph"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// RDMA-device operator kernels: RdmaSend/RdmaRecv for statically placed
// tensors (§3.2, §4) and RdmaSendDyn/RdmaRecvDyn for dynamically allocated
// ones (§3.3). The recv operators use the polling-async execution mode.

func commEnv(ctx *graph.Context) (*Env, error) {
	env, ok := ctx.Env.(*Env)
	if !ok || env == nil {
		return nil, fmt.Errorf("%w: kernel run without a communication Env", ErrComm)
	}
	return env, nil
}

// --- RdmaSend (static placement) ---

type rdmaSendOp struct{ spec analyzer.EdgeSpec }

func (op *rdmaSendOp) Name() string    { return "RdmaSend" }
func (op *rdmaSendOp) EdgeKey() string { return op.spec.Key }

func (op *rdmaSendOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantEdgeInput("RdmaSend", in, 1); err != nil {
		return graph.Sig{}, err
	}
	return in[0], nil
}

func (op *rdmaSendOp) ComputeAsync(ctx *graph.Context, done func(error)) {
	env, err := commEnv(ctx)
	if err != nil {
		done(err)
		return
	}
	st, err := env.staticSendState(op.spec.Key)
	if err != nil {
		done(err)
		return
	}
	in := ctx.Inputs[0]
	if ctx.Iter == 0 && env.Policy != nil {
		// First mini-batch: report the transferred tensor so its
		// allocation site is promoted (§3.4 dynamic tracing).
		env.Policy.NoteTransfer(in, op.spec.SrcNode)
	}
	if in.ByteSize() != op.spec.Sig.ByteSize() {
		done(fmt.Errorf("%w: edge %s payload %dB, slot %dB", ErrComm, op.spec.Key,
			in.ByteSize(), op.spec.Sig.ByteSize()))
		return
	}
	// Zero-copy when the input already lives in the staging slot (the
	// analyzer arranged the allocation site); otherwise the RDMA.cp path,
	// pipelined: SendRetryFrom stages the payload lane by lane, so early
	// lanes' writes are in flight while later lanes are still being copied.
	// The slot's send lock is held until the write completes so sibling
	// edges sharing the staging cannot clobber bytes mid-flight.
	complete := done
	var payload []byte
	if &in.Bytes()[0] == &st.slot.tensor.Bytes()[0] {
		env.Metrics.AddZeroCopy()
	} else {
		st.slot.sendMu.Lock()
		payload = in.Bytes()
		env.Metrics.AddCopy(in.ByteSize())
		complete = func(err error) {
			st.slot.sendMu.Unlock()
			done(err)
		}
	}
	env.recordSent(op.spec.Key, rdma.StaticSlotSize(op.spec.Sig.ByteSize()))
	if rdma.EffectiveStripes(op.spec.Sig.ByteSize(), env.Xfer.Stripes) > 1 {
		env.Metrics.AddStripedTransfer()
	}
	ctx.Output = in
	// SendRetry blocks through transient fabric faults (bounded by the Env's
	// transfer opts), so it runs on its own goroutine: the scheduler worker
	// stays free and a retrying edge cannot stall unrelated operators. The
	// iteration's cancel flag rides along so the retry dies with the run —
	// a re-send landing after an abort would clobber the receiver's slot
	// mid-recovery.
	opts := env.xferOptsFor(op.spec.Key)
	opts.Canceled = ctx.Canceled
	go func() {
		var err error
		switch {
		case st.lossy != nil && payload != nil:
			err = st.lossy.SendRetryFrom(payload, opts)
		case st.lossy != nil:
			err = st.lossy.SendRetry(opts)
		case payload != nil:
			err = st.sender.SendRetryFrom(payload, opts)
		default:
			err = st.sender.SendRetry(opts)
		}
		complete(env.edgeErr(op.spec.Key, err))
	}()
}

// --- RdmaRecv (static placement, polling-async) ---

type rdmaRecvOp struct{ spec analyzer.EdgeSpec }

func (op *rdmaRecvOp) Name() string    { return "RdmaRecv" }
func (op *rdmaRecvOp) EdgeKey() string { return op.spec.Key }

func (op *rdmaRecvOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantEdgeInput("RdmaRecv", in, 0); err != nil {
		return graph.Sig{}, err
	}
	return op.spec.Sig, nil
}

func (op *rdmaRecvOp) Poll(ctx *graph.Context) (bool, error) {
	env, err := commEnv(ctx)
	if err != nil {
		return false, err
	}
	st, err := env.staticRecvState(op.spec.Key)
	if err != nil {
		return false, err
	}
	if st.lossy != nil {
		return st.lossy.Poll(), nil
	}
	return st.recv.Poll(), nil
}

func (op *rdmaRecvOp) Compute(ctx *graph.Context) error {
	env, err := commEnv(ctx)
	if err != nil {
		return err
	}
	st, err := env.staticRecvState(op.spec.Key)
	if err != nil {
		return err
	}
	// Zero-copy receive: the output tensor aliases the preallocated slot.
	var payload []byte
	if st.lossy != nil {
		payload = st.lossy.Payload()
	} else {
		payload = st.recv.Payload()
	}
	t, err := tensor.FromBytes(op.spec.Sig.DType, op.spec.Sig.Shape, payload)
	if err != nil {
		return err
	}
	if st.lossy != nil {
		st.lossy.Consume()
	} else {
		st.recv.Consume()
	}
	env.recordRecv(op.spec.Key, t.ByteSize())
	ctx.Output = t
	return nil
}

// --- RdmaSendDyn (dynamic allocation) ---

type rdmaSendDynOp struct{ spec analyzer.EdgeSpec }

func (op *rdmaSendDynOp) Name() string    { return "RdmaSendDyn" }
func (op *rdmaSendDynOp) EdgeKey() string { return op.spec.Key }

func (op *rdmaSendDynOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantEdgeInput("RdmaSendDyn", in, 1); err != nil {
		return graph.Sig{}, err
	}
	return in[0], nil
}

// Poll defers the send until the receiver acked the previous iteration's
// transfer, keeping the scheduler free for other work meanwhile.
func (op *rdmaSendDynOp) Poll(ctx *graph.Context) (bool, error) {
	env, err := commEnv(ctx)
	if err != nil {
		return false, err
	}
	st, err := env.dynSendState(op.spec.Key)
	if err != nil {
		return false, err
	}
	return st.sender.PollReusable(), nil
}

func (op *rdmaSendDynOp) ComputeAsync(ctx *graph.Context, done func(error)) {
	env, err := commEnv(ctx)
	if err != nil {
		done(err)
		return
	}
	st, err := env.dynSendState(op.spec.Key)
	if err != nil {
		done(err)
		return
	}
	in := ctx.Inputs[0]
	if ctx.Iter == 0 && env.Policy != nil {
		env.Policy.NoteTransfer(in, op.spec.SrcNode)
	}
	dims := make([]uint64, in.Shape().Rank())
	for i, d := range in.Shape() {
		dims[i] = uint64(d)
	}
	var payloadMR *rdma.MemRegion
	var payloadOff int
	if buf, ok := env.Policy.LookupRegistered(in); ok {
		// The tensor already lives in the registered arena: the receiver
		// reads it in place, no copy.
		payloadMR, payloadOff = env.arenaMR, buf.Off
		env.Metrics.AddZeroCopy()
	} else {
		// Copy fallback into the per-edge scratch region.
		if st.scratch == nil || st.scratch.Size() < in.ByteSize() {
			if st.scratch != nil {
				st.dev.FreeMemRegion(st.scratch)
			}
			st.scratch, err = st.dev.AllocateMemRegion(in.ByteSize())
			if err != nil {
				done(err)
				return
			}
		}
		copy(st.scratch.Bytes(), in.Bytes())
		env.Metrics.AddCopy(in.ByteSize())
		payloadMR, payloadOff = st.scratch, 0
	}
	env.recordSent(op.spec.Key, in.ByteSize()+rdma.DynMetaSize)
	env.Metrics.AddDynTransfer()
	ctx.Output = in
	size := in.ByteSize()
	dt := uint32(in.DType())
	// Blocking retried send on its own goroutine (see rdmaSendOp). ErrBusy
	// from a not-yet-acked previous transfer is also retried: the ack may
	// just be in flight behind an injected delay.
	opts := env.xferOptsFor(op.spec.Key)
	opts.Canceled = ctx.Canceled
	go func() {
		done(env.edgeErr(op.spec.Key,
			st.sender.SendRetry(payloadMR, payloadOff, size, dt, dims, opts)))
	}()
}

// --- RdmaRecvDyn (dynamic allocation, polling-async) ---

type rdmaRecvDynOp struct{ spec analyzer.EdgeSpec }

func (op *rdmaRecvDynOp) Name() string    { return "RdmaRecvDyn" }
func (op *rdmaRecvDynOp) EdgeKey() string { return op.spec.Key }

func (op *rdmaRecvDynOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantEdgeInput("RdmaRecvDyn", in, 0); err != nil {
		return graph.Sig{}, err
	}
	return op.spec.Sig, nil
}

func (op *rdmaRecvDynOp) Poll(ctx *graph.Context) (bool, error) {
	env, err := commEnv(ctx)
	if err != nil {
		return false, err
	}
	st, err := env.dynRecvState(op.spec.Key)
	if err != nil {
		return false, err
	}
	meta, ok := st.recv.Poll()
	if ok {
		st.mu.Lock()
		st.meta, st.hasMeta = meta, true
		st.mu.Unlock()
	}
	return ok, nil
}

func (op *rdmaRecvDynOp) ComputeAsync(ctx *graph.Context, done func(error)) {
	env, err := commEnv(ctx)
	if err != nil {
		done(err)
		return
	}
	st, err := env.dynRecvState(op.spec.Key)
	if err != nil {
		done(err)
		return
	}
	st.mu.Lock()
	meta, ok := st.meta, st.hasMeta
	st.hasMeta = false
	st.mu.Unlock()
	if !ok {
		done(fmt.Errorf("%w: RdmaRecvDyn scheduled without metadata", ErrComm))
		return
	}
	dt := tensor.DType(meta.DType)
	shape := make(tensor.Shape, len(meta.Dims))
	for i, d := range meta.Dims {
		shape[i] = int(d)
	}
	if !dt.Valid() || shape.NumElements()*dt.Size() != int(meta.PayloadSize) {
		done(fmt.Errorf("%w: edge %s metadata inconsistent: %v %v for %d bytes",
			ErrComm, op.spec.Key, dt, shape, meta.PayloadSize))
		return
	}
	// "allocates a new tensor storage in the RDMA accessible memory
	// region" (§3.3): carve the destination from the registered arena.
	buf, err := env.arena.Allocate(int(meta.PayloadSize))
	if err != nil {
		done(fmt.Errorf("%w: edge %s receive allocation: %v", ErrComm, op.spec.Key, err))
		return
	}
	st.deferFree(ctx.Iter, buf, env)
	out, err := tensor.FromBytes(dt, shape, buf.Data)
	if err != nil {
		done(err)
		return
	}
	env.recordRecv(op.spec.Key, int(meta.PayloadSize))
	if rdma.EffectiveStripes(int(meta.PayloadSize), env.Xfer.Stripes) > 1 {
		env.Metrics.AddStripedTransfer()
	}
	st.mu.Lock()
	scratch := st.senderScratch
	st.mu.Unlock()
	// FetchRetry blocks until the payload read AND the reuse ack completed
	// (retrying both within the budget); run it off the scheduler worker.
	opts := env.xferOptsFor(op.spec.Key)
	opts.Canceled = ctx.Canceled
	go func() {
		err := st.recv.FetchRetry(meta, scratch, env.arenaMR, buf.Off, opts)
		if err == nil {
			ctx.Output = out
		}
		done(env.edgeErr(op.spec.Key, err))
	}()
}

func wantEdgeInput(name string, in []graph.Sig, n int) error {
	if len(in) != n {
		return fmt.Errorf("%s: %d inputs, want %d: %w", name, len(in), n, graph.ErrBadGraph)
	}
	return nil
}
