package distributed

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/comm"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// Sharded-PS suite: partitioning gradient buckets across K shard tasks —
// flat or through two-level hierarchical aggregation — must not change a
// single bit versus -topology=ps, and shard faults must behave exactly
// like PS faults: chaos heals to identical bits, a crashed shard replays
// bit-identically, a dead shard fails typed and bounded.

// TestShardedPSParityShardWorkerSweep is the headline sharded property
// sweep: shard counts 1..4 crossed with worker counts 2..8, unaligned
// tensor dimensions, and a bucket capacity forcing one bucket per variable
// — every combination bit-identical to the single-PS reference.
func TestShardedPSParityShardWorkerSweep(t *testing.T) {
	const steps = 2
	for workers := 2; workers <= 8; workers++ {
		base := MLPConfig{Workers: workers, PSCount: 2, Batch: 4,
			In: 7, Hidden: 5, Classes: 3, LR: 0.3}
		ps := base
		ps.Topology = "ps"
		refLosses, refVars := runMLPTopology(t, ps, rdmaTestConfig(), steps)
		for shards := 1; shards <= 4; shards++ {
			cfg := base
			cfg.Topology = "sharded-ps"
			cfg.PSShards = shards
			cfg.BucketBytes = 64 // one bucket per variable -> all shards used
			commCfg := rdmaTestConfig()
			commCfg.Transfer.Stripes = 2
			commCfg.Transfer.CoalesceThreshold = 96
			losses, vars := runMLPTopology(t, cfg, commCfg, steps)
			assertTopologyParity(t, fmt.Sprintf("sharded-ps/k=%d/w=%d", shards, workers),
				refLosses, refVars, losses, vars)
		}
	}
}

// TestShardedPSHierarchicalParity proves the two-level fold is the same
// binary-add sequence: aggregator group sizes that split the workers
// evenly, raggedly, and into a single group must all reproduce the flat
// PS bits.
func TestShardedPSHierarchicalParity(t *testing.T) {
	const steps = 3
	base := MLPConfig{Workers: 6, PSCount: 1, Batch: 4,
		In: 7, Hidden: 5, Classes: 3, LR: 0.3}
	ps := base
	ps.Topology = "ps"
	refLosses, refVars := runMLPTopology(t, ps, rdmaTestConfig(), steps)
	for _, aggGroup := range []int{2, 3, 4, 6} {
		cfg := base
		cfg.Topology = "sharded-ps"
		cfg.PSShards = 2
		cfg.AggGroup = aggGroup
		cfg.BucketBytes = 64
		losses, vars := runMLPTopology(t, cfg, rdmaTestConfig(), steps)
		assertTopologyParity(t, fmt.Sprintf("sharded-ps/agg=%d", aggGroup),
			refLosses, refVars, losses, vars)
	}
}

// TestShardedPSParityBucketSizes sweeps bucket capacities that pack
// everything into one bucket, split mid-model, and isolate every variable,
// under coalesce thresholds putting the shard edges on the eager,
// coalesced, and striped paths.
func TestShardedPSParityBucketSizes(t *testing.T) {
	const steps = 2
	base := MLPConfig{Workers: 3, PSCount: 1, Batch: 4, In: 8, Hidden: 8, Classes: 4, LR: 0.25}
	ps := base
	ps.Topology = "ps"
	refLosses, refVars := runMLPTopology(t, ps, rdmaTestConfig(), steps)

	for _, bucketBytes := range []int{16, 300, 1 << 20} {
		for _, coalesce := range []int{0, 128, 1 << 20} {
			cfg := base
			cfg.Topology = "sharded-ps"
			cfg.PSShards = 2
			cfg.BucketBytes = bucketBytes
			commCfg := rdmaTestConfig()
			commCfg.Transfer.CoalesceThreshold = coalesce
			losses, vars := runMLPTopology(t, cfg, commCfg, steps)
			assertTopologyParity(t, fmt.Sprintf("sharded-ps/bucket=%d/coalesce=%d", bucketBytes, coalesce),
				refLosses, refVars, losses, vars)
		}
	}
}

// TestShardMapDeterministicBalance pins the builder-visible shard layout:
// the deterministic greedy map spreads the MLP's four single-variable
// buckets across the shards least-loaded-first, every bucket lands on a
// valid shard, and the map round-trips through its wire form.
func TestShardMapDeterministicBalance(t *testing.T) {
	cfg := MLPConfig{Workers: 2, Batch: 4, In: 7, Hidden: 5, Classes: 3, LR: 0.1,
		Topology: "sharded-ps", PSShards: 2, BucketBytes: 64}
	job, err := BuildMLPTraining(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if job.ShardMap == nil {
		t.Fatal("sharded job has no shard map")
	}
	if len(job.ShardMap.Assign) != len(job.Buckets) {
		t.Fatalf("map covers %d buckets, layout has %d", len(job.ShardMap.Assign), len(job.Buckets))
	}
	used := make(map[int]bool)
	for bi, s := range job.ShardMap.Assign {
		if s < 0 || s >= cfg.PSShards {
			t.Fatalf("bucket %d on shard %d of %d", bi, s, cfg.PSShards)
		}
		used[s] = true
	}
	if len(used) != cfg.PSShards {
		t.Fatalf("only %d of %d shards used for %d buckets", len(used), cfg.PSShards, len(job.Buckets))
	}
	rt, err := comm.UnmarshalShardMap(job.ShardMap.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for bi := range job.ShardMap.Assign {
		if rt.Assign[bi] != job.ShardMap.Assign[bi] || rt.Bytes[bi] != job.ShardMap.Bytes[bi] {
			t.Fatalf("bucket %d round-trips to shard %d/%dB, want %d/%dB",
				bi, rt.Assign[bi], rt.Bytes[bi], job.ShardMap.Assign[bi], job.ShardMap.Bytes[bi])
		}
	}
}

func shardedChaosMLPConfig() MLPConfig {
	return MLPConfig{Workers: 3, Batch: 8, In: 12, Hidden: 10, Classes: 4,
		LR: 0.2, Topology: "sharded-ps", PSShards: 2, BucketBytes: 64}
}

// runShardedChaosTraining mirrors runRingChaosTraining for the sharded-PS
// plane: same seeds, caller-installed fault injection, per-step losses,
// final shared-variable values, metrics, and the first step error.
func runShardedChaosTraining(t *testing.T, cfg Config, steps int,
	afterLaunch func(*Cluster)) ([]float32, map[string][]float32, map[string]metrics.CommSnapshot, error) {
	t.Helper()
	mcfg := shardedChaosMLPConfig()
	job, err := BuildMLPTraining(mcfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Launch(job.Builder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := job.InitAll(cl); err != nil {
		t.Fatal(err)
	}
	feeds := job.SyntheticDataset(7)
	fetches := make(map[string][]string)
	for k, task := range job.WorkerTasks {
		fetches[task] = []string{job.LossName(k)}
	}
	if afterLaunch != nil {
		afterLaunch(cl)
	}
	var losses []float32
	for iter := 0; iter < steps; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			return losses, nil, cl.MetricsSnapshot(), err
		}
		var sum float32
		for k, task := range job.WorkerTasks {
			sum += out[task][job.LossName(k)].Float32s()[0]
		}
		losses = append(losses, sum/float32(len(job.WorkerTasks)))
	}
	vars := make(map[string][]float32)
	for _, name := range mlpLogicalVars {
		vt, err := cl.VarTensor(name)
		if err != nil {
			t.Fatal(err)
		}
		vars[name] = append([]float32(nil), vt.Float32s()...)
	}
	return losses, vars, cl.MetricsSnapshot(), nil
}

// TestShardedPSChaosBitIdenticalUnderFaults: a 20-step sharded run under
// seeded drops, delays, write reordering, and a healing worker<->shard
// partition must complete through bounded retries with the exact bits of
// a fault-free run.
func TestShardedPSChaosBitIdenticalUnderFaults(t *testing.T) {
	const steps = 20
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 8 * time.Second, Stripes: 2},
	}
	cleanLosses, cleanVars, _, err := runShardedChaosTraining(t, cfg, steps, nil)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}

	var inj *chaos.Injector
	losses, vars, ms, err := runShardedChaosTraining(t, cfg, steps, func(cl *Cluster) {
		inj = chaos.New(chaos.Plan{
			Seed:        23,
			DropRate:    0.08,
			DelayRate:   0.10,
			MaxDelay:    2 * time.Millisecond,
			ReorderRate: 0.05,
			Script: []chaos.Event{
				{At: 5 * time.Millisecond, A: "worker0", B: "ps1", Heal: 100 * time.Millisecond},
			},
			Metrics: cl.Server("worker0").Metrics,
		})
		inj.Install(cl.Fabric())
		inj.Start()
	})
	defer inj.Stop()
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if len(losses) != steps {
		t.Fatalf("completed %d/%d steps", len(losses), steps)
	}

	c := inj.Counters()
	if c.Injected[chaos.Drop] == 0 {
		t.Error("no transfer drops injected")
	}
	if c.Injected[chaos.PartitionEvent] < 2 {
		t.Errorf("shard partition fired %d events, want apply+heal", c.Injected[chaos.PartitionEvent])
	}
	var retries, timeouts int64
	for _, s := range ms {
		retries += s.Retries
		timeouts += s.Timeouts
	}
	if retries == 0 {
		t.Error("no retries recorded despite injected faults")
	}
	if timeouts != 0 {
		t.Errorf("%d edges timed out; all faults should heal within the budget", timeouts)
	}

	for i := range losses {
		if losses[i] != cleanLosses[i] {
			t.Fatalf("loss[%d] = %v under chaos, %v clean (corruption or nondeterminism)", i, losses[i], cleanLosses[i])
		}
	}
	for _, name := range mlpLogicalVars {
		for i := range vars[name] {
			if vars[name][i] != cleanVars[name][i] {
				t.Fatalf("%s[%d] = %v under chaos, %v clean", name, i, vars[name][i], cleanVars[name][i])
			}
		}
	}
}

// TestShardedPSNeverHealingShardPartitionFailsTyped: cutting a worker off
// one shard for good starves that shard's bucket folds; the step must fail
// with the typed edge timeout (or the executor's poll timeout), bounded by
// the configured deadlines — never hang half-sharded.
func TestShardedPSNeverHealingShardPartitionFailsTyped(t *testing.T) {
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 2 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 1 * time.Second},
	}
	start := time.Now()
	_, _, ms, err := runShardedChaosTraining(t, cfg, 20, func(cl *Cluster) {
		cl.Fabric().Partition("worker1", "ps1")
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("sharded training succeeded across a never-healing shard partition")
	}
	if !errors.Is(err, ErrEdgeTimeout) && !errors.Is(err, exec.ErrPollTimeout) {
		t.Fatalf("err = %v, want ErrEdgeTimeout or exec.ErrPollTimeout", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("step failure took %v; deadlines were 1s/2s", elapsed)
	}
	if errors.Is(err, ErrEdgeTimeout) {
		var timeouts int64
		for _, s := range ms {
			timeouts += s.Timeouts
		}
		if timeouts == 0 {
			t.Error("edge timed out but no timeout was counted")
		}
	}
	t.Logf("sharded step failed as expected after %v: %v", elapsed, err)
}

// shardedRecoveryRun mirrors ringRecoveryRun over the sharded-PS plane,
// optionally killing a shard task ~1ms into step 10 — mid-fold, while
// workers' packed buckets are in flight toward it.
func shardedRecoveryRun(t *testing.T, crashTask string) (map[int]float32, map[string][]float32, metrics.RecoverySnapshot) {
	t.Helper()
	const steps = 20
	mcfg := shardedChaosMLPConfig()
	job, err := BuildMLPTraining(mcfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Launch(job.Builder, Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer: rdma.TransferOpts{
			Deadline:          8 * time.Second,
			Stripes:           2,
			CoalesceThreshold: 256,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := job.InitAll(cl); err != nil {
		t.Fatal(err)
	}
	feeds := job.SyntheticDataset(7)
	fetches := make(map[string][]string)
	for k, task := range job.WorkerTasks {
		fetches[task] = []string{job.LossName(k)}
	}
	rec, err := cl.EnableRecovery(RecoveryConfig{
		Heartbeat:       HeartbeatConfig{Period: 5 * time.Millisecond},
		CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var inj *chaos.Injector
	if crashTask != "" {
		inj = chaos.New(chaos.Plan{
			Seed:   17,
			Script: []chaos.Event{{At: time.Millisecond, Crash: crashTask}},
			Crash:  func(task string) { _ = cl.KillTask(task) },
		})
		inj.Install(cl.Fabric())
		t.Cleanup(inj.Stop)
	}
	losses := make(map[int]float32)
	onStep := func(iter int, out map[string]map[string]*tensor.Tensor) {
		var sum float32
		for k, task := range job.WorkerTasks {
			sum += out[task][job.LossName(k)].Float32s()[0]
		}
		losses[iter] = sum / float32(len(job.WorkerTasks))
		if iter == 9 && inj != nil {
			inj.Start() // strike ~1ms into step 10
		}
	}
	if err := rec.Run(steps, feeds, fetches, onStep); err != nil {
		t.Fatalf("sharded recovery run failed: %v", err)
	}
	if inj != nil {
		if n := inj.Counters().Injected[chaos.CrashEvent]; n != 1 {
			t.Errorf("crash events injected = %d, want 1", n)
		}
	}
	vars := make(map[string][]float32)
	for _, name := range mlpLogicalVars {
		vt, err := cl.VarTensor(name)
		if err != nil {
			t.Fatal(err)
		}
		vars[name] = append([]float32(nil), vt.Float32s()...)
	}
	return losses, vars, rec.Metrics()
}

// TestRecoveryShardedPSCrashBitIdentical: a shard killed mid-step is
// detected, restarted under its old endpoint, its partition of the shared
// variables rolled back from the checkpoint, and the replayed run finishes
// bit-identical to an uninterrupted one.
func TestRecoveryShardedPSCrashBitIdentical(t *testing.T) {
	cleanLosses, cleanVars, cleanRS := shardedRecoveryRun(t, "")
	if cleanRS.LeaseExpiries != 0 || cleanRS.Recoveries != 0 {
		t.Fatalf("clean run saw expiries=%d recoveries=%d", cleanRS.LeaseExpiries, cleanRS.Recoveries)
	}

	losses, vars, rs := shardedRecoveryRun(t, "ps1")
	if rs.LeaseExpiries < 1 {
		t.Error("no lease expiry: shard crash was not detected")
	}
	if rs.Rejoins < 1 || rs.Rollbacks < 1 || rs.Recoveries < 1 {
		t.Errorf("recovery did not complete: rejoins=%d rollbacks=%d recoveries=%d",
			rs.Rejoins, rs.Rollbacks, rs.Recoveries)
	}
	for iter, l := range cleanLosses {
		if got, ok := losses[iter]; !ok || got != l {
			t.Fatalf("loss[%d] = %v after recovery, %v clean", iter, losses[iter], l)
		}
	}
	for _, name := range mlpLogicalVars {
		for i := range cleanVars[name] {
			if vars[name][i] != cleanVars[name][i] {
				t.Fatalf("%s[%d] = %v after recovery, %v clean (replay not bit-identical)",
					name, i, vars[name][i], cleanVars[name][i])
			}
		}
	}
}
