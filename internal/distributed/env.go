package distributed

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/analyzer"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/rpc"
	"repro/internal/tensor"
)

// Errors of the distributed runtime.
var (
	ErrSetup = errors.New("distributed: setup error")
	ErrComm  = errors.New("distributed: communication error")
	// ErrEdgeTimeout is returned when a transfer edge exhausts its retry
	// budget or deadline: the fault did not heal in time and the step is
	// failed with a diagnostic instead of hanging the scheduler. It wraps
	// the underlying cause (e.g. rdma.ErrUnreachable), visible to errors.Is.
	ErrEdgeTimeout = errors.New("distributed: edge transfer deadline exceeded")
)

// Env is one server's communication environment; send/recv kernels reach it
// through graph.Context.Env.
type Env struct {
	Task    string
	Kind    Kind
	Policy  *analyzer.TracingPolicy
	Metrics *metrics.Comm
	// Hists receives per-edge observability distributions (sent/recv bytes,
	// transfer latency), recorded at exactly the same call sites as the Comm
	// counters so the two stay consistent. Nil disables recording (all
	// histogram types are nil-safe).
	Hists *metrics.Set
	// Xfer bounds every edge transfer (deadline, retry budget, backoff).
	// The zero value selects the rdma package defaults.
	Xfer rdma.TransferOpts

	arena   *alloc.Arena
	arenaMR *rdma.MemRegion

	mu         sync.Mutex
	staticSend map[string]*staticSendState
	staticRecv map[string]*staticRecvState
	dynSend    map[string]*dynSendState
	dynRecv    map[string]*dynRecvState
	stagings   map[string]*stagingSlot // by source node name
	rpcClients map[string]*rpc.Client  // by destination task
	mailboxes  map[string]*mailbox     // by edge key

	// Small-message coalescing: per-peer batch groups plus the per-edge
	// membership records the send/recv kernels look up.
	coalSendGroups map[string]*coalSendGroup // by pair key
	coalRecvGroups map[string]*coalRecvGroup // by pair key
	coalSendEdges  map[string]*coalSendEdge  // by edge key
	coalRecvEdges  map[string]*coalRecvEdge  // by edge key
}

func newEnv(task string, kind Kind, pol *analyzer.TracingPolicy, m *metrics.Comm,
	arena *alloc.Arena, arenaMR *rdma.MemRegion) *Env {
	return &Env{
		Task: task, Kind: kind, Policy: pol, Metrics: m,
		arena: arena, arenaMR: arenaMR,
		staticSend: make(map[string]*staticSendState),
		staticRecv: make(map[string]*staticRecvState),
		dynSend:    make(map[string]*dynSendState),
		dynRecv:    make(map[string]*dynRecvState),
		stagings:   make(map[string]*stagingSlot),
		rpcClients: make(map[string]*rpc.Client),
		mailboxes:  make(map[string]*mailbox),

		coalSendGroups: make(map[string]*coalSendGroup),
		coalRecvGroups: make(map[string]*coalRecvGroup),
		coalSendEdges:  make(map[string]*coalSendEdge),
		coalRecvEdges:  make(map[string]*coalRecvEdge),
	}
}

// coalSendGroup is the sender side of one peer pair's coalesced batch: all
// below-threshold static edges to that peer stage into one slot, and the
// last stager of an iteration flushes the batch. The mutex is held across
// the blocking flush so the next iteration's stagers cannot touch the batch
// buffer while the write is in flight.
type coalSendGroup struct {
	key     string
	sender  *rdma.CoalescedSender
	members int // sub-messages per full batch

	mu      sync.Mutex
	iter    int // iteration the staged batch belongs to
	staged  int
	waiters []func(error)
}

// failPending fails every waiter parked on the group's partially staged
// batch and resets the batch for the next iteration. Called when the
// iteration that staged them can no longer fill the batch — a run abort
// (via Env.FailPending) or an edge teardown before a recovery rebuild.
func (g *coalSendGroup) failPending(err error) {
	g.mu.Lock()
	waiters := g.waiters
	g.waiters, g.staged = nil, 0
	if len(waiters) > 0 {
		g.sender.Reset()
	}
	g.mu.Unlock()
	for _, w := range waiters {
		w(err)
	}
}

// coalRecvGroup is the receiver side: one batch slot whose arrival satisfies
// every member edge's recv kernel. Arrived payloads are copied out of the
// slot under the lock, the slot is consumed immediately, and the reuse ack
// is posted once per batch.
type coalRecvGroup struct {
	key  string
	recv *rdma.CoalescedReceiver

	mu        sync.Mutex
	senderAck rdma.DynSlotDesc // pushed by the sender during setup
	haveAck   bool
	iter      int               // iteration the pending payloads belong to
	pending   map[uint32][]byte // arrived sub-messages awaiting their kernels
	ackErr    error             // a failed reuse ack poisons the group
}

// coalSendEdge / coalRecvEdge bind one graph edge to its group slot.
type coalSendEdge struct {
	spec  analyzer.EdgeSpec
	group *coalSendGroup
	id    uint32
}

type coalRecvEdge struct {
	spec  analyzer.EdgeSpec
	group *coalRecvGroup
	id    uint32
}

// stagingSlot is a sender-side registered buffer shaped like one tensor
// plus the tail flag word; when graph analysis is on, the source tensor is
// produced directly inside it (variables at setup, transient tensors via
// allocation-site tracing).
type stagingSlot struct {
	mr     *rdma.MemRegion
	tensor *tensor.Tensor // aliases mr payload bytes
	// sendMu serializes copy-then-write sequences: edges fanning out of one
	// source share the slot, and a bounce copy (RDMA.cp path, or the
	// tracing iteration) must not overwrite bytes an in-flight sibling
	// write is still reading.
	sendMu sync.Mutex
}

// newStagingSlot registers a slot for one static payload.
func newStagingSlot(dev *rdma.Device, dt tensor.DType, shape tensor.Shape) (*stagingSlot, error) {
	payload := shape.NumElements() * dt.Size()
	mr, err := dev.AllocateMemRegion(rdma.StaticSlotSize(payload))
	if err != nil {
		return nil, err
	}
	t, err := tensor.FromBytes(dt, shape, mr.Bytes()[:payload])
	if err != nil {
		return nil, err
	}
	return &stagingSlot{mr: mr, tensor: t}, nil
}

type staticSendState struct {
	spec   analyzer.EdgeSpec
	slot   *stagingSlot
	sender *rdma.StaticSender
	// lossy, when non-nil, wraps sender with the selective-retransmit
	// protocol (Config.LossyFabric); the send kernels go through it.
	lossy *rdma.LossySender
}

type staticRecvState struct {
	spec analyzer.EdgeSpec
	recv *rdma.StaticReceiver
	// lossy replaces recv on a lossy fabric (exactly one of the two is set).
	lossy *rdma.LossyReceiver
}

type dynSendState struct {
	spec    analyzer.EdgeSpec
	sender  *rdma.DynSender
	dev     *rdma.Device
	scratch *rdma.MemRegion // copy fallback payload area, grown on demand
}

type dynRecvState struct {
	spec          analyzer.EdgeSpec
	recv          *rdma.DynReceiver
	senderScratch rdma.DynSlotDesc

	mu      sync.Mutex
	meta    rdma.DynMeta // pending metadata between Poll and Compute
	hasMeta bool
	// deferred arena frees: buffers become reusable two iterations later.
	pendingFree []pendingBuf
}

type pendingBuf struct {
	iter int
	buf  *alloc.Buffer
}

// deferFree schedules a receive buffer for release and frees buffers at
// least two iterations old — by then the synchronous training step
// guarantees every consumer of the received tensor has finished.
func (st *dynRecvState) deferFree(iter int, buf *alloc.Buffer, env *Env) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.pendingFree = append(st.pendingFree, pendingBuf{iter: iter, buf: buf})
	keep := st.pendingFree[:0]
	for _, p := range st.pendingFree {
		if p.iter <= iter-2 {
			_ = env.arena.Free(p.buf)
		} else {
			keep = append(keep, p)
		}
	}
	st.pendingFree = keep
}

// mailbox carries tensors for one RPC edge from the service handler to the
// recv kernel. Poll moves an arrived item into the stash; Compute takes it.
type mailbox struct {
	ch chan mailboxItem

	mu      sync.Mutex
	stashed mailboxItem
	hasItem bool
}

type mailboxItem struct {
	seq int
	t   *tensor.Tensor
}

func newMailbox() *mailbox { return &mailbox{ch: make(chan mailboxItem, 4)} }

func (mb *mailbox) stash(item mailboxItem) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.stashed, mb.hasItem = item, true
}

func (mb *mailbox) takeStash() (mailboxItem, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	item, ok := mb.stashed, mb.hasItem
	mb.hasItem = false
	return item, ok
}

// xferOpts returns the server's transfer bounds with the retry, per-lane
// stripe, and doorbell-flush counters wired into the metrics sink.
func (e *Env) xferOpts() rdma.TransferOpts {
	o := e.Xfer
	o.OnRetry = func(error) { e.Metrics.AddRetry() }
	o.OnStripe = func(lane, n int) { e.Metrics.AddStripe(lane, n) }
	o.OnDoorbell = func(lane, chunks int) { e.Metrics.AddDoorbellFlush() }
	o.OnRetransmit = func(chunks int) { e.Metrics.AddRetransmit(chunks) }
	return o
}

// xferOptsFor is xferOpts with the edge's transfer-latency histogram wired
// into the completion hook.
func (e *Env) xferOptsFor(key string) rdma.TransferOpts {
	o := e.xferOpts()
	if e.Hists != nil {
		h := e.Hists.Family(metrics.HistEdgeXferNs).With(key)
		o.OnComplete = func(bytes int, d time.Duration) { h.Record(d.Nanoseconds()) }
	}
	return o
}

// recordSent pairs the sent-bytes counter with the edge's sent-bytes
// histogram: same value, same call site, so histogram sums always equal the
// counter and histogram counts always equal the message count.
func (e *Env) recordSent(key string, n int) {
	e.Metrics.AddSent(n)
	e.Hists.Family(metrics.HistEdgeSentBytes).With(key).Record(int64(n))
}

// recordRecv is recordSent's receive-side twin.
func (e *Env) recordRecv(key string, n int) {
	e.Metrics.AddRecv(n)
	e.Hists.Family(metrics.HistEdgeRecvBytes).With(key).Record(int64(n))
}

// FailPending fails asynchronous completions parked in this environment
// waiting for work a dead iteration will never produce — coalesce-group
// members staged into a batch whose remaining members were never
// dispatched. exec.Run calls it (through an interface assertion on
// Config.Env) after a failed run's workers exit, which is what keeps the
// run's in-flight drain bounded: parked waiters have no retry loop polling
// the cancel flag on their behalf.
func (e *Env) FailPending(cause error) {
	e.mu.Lock()
	groups := make([]*coalSendGroup, 0, len(e.coalSendGroups))
	for _, g := range e.coalSendGroups {
		groups = append(groups, g)
	}
	e.mu.Unlock()
	for _, g := range groups {
		g.failPending(e.edgeErr(g.key, fmt.Errorf("coalesce batch abandoned: %w", cause)))
	}
}

// edgeErr classifies a transfer failure for the scheduler: an exhausted
// retry budget becomes the typed edge timeout (counted in the metrics);
// everything else passes through with edge context attached.
func (e *Env) edgeErr(key string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, rdma.ErrTimeout) {
		e.Metrics.AddTimeout()
		return fmt.Errorf("%w: edge %s on %s: %w", ErrEdgeTimeout, key, e.Task, err)
	}
	return fmt.Errorf("distributed: edge %s on %s: %w", key, e.Task, err)
}

func (e *Env) staticSendState(key string) (*staticSendState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.staticSend[key]
	if !ok {
		return nil, fmt.Errorf("%w: static send edge %q not set up on %s", ErrComm, key, e.Task)
	}
	return st, nil
}

func (e *Env) staticRecvState(key string) (*staticRecvState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.staticRecv[key]
	if !ok {
		return nil, fmt.Errorf("%w: static recv edge %q not set up on %s", ErrComm, key, e.Task)
	}
	return st, nil
}

func (e *Env) dynSendState(key string) (*dynSendState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.dynSend[key]
	if !ok {
		return nil, fmt.Errorf("%w: dynamic send edge %q not set up on %s", ErrComm, key, e.Task)
	}
	return st, nil
}

func (e *Env) dynRecvState(key string) (*dynRecvState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.dynRecv[key]
	if !ok {
		return nil, fmt.Errorf("%w: dynamic recv edge %q not set up on %s", ErrComm, key, e.Task)
	}
	return st, nil
}

func (e *Env) coalSendEdge(key string) (*coalSendEdge, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.coalSendEdges[key]
	if !ok {
		return nil, fmt.Errorf("%w: coalesced send edge %q not set up on %s", ErrComm, key, e.Task)
	}
	return m, nil
}

func (e *Env) coalRecvEdge(key string) (*coalRecvEdge, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.coalRecvEdges[key]
	if !ok {
		return nil, fmt.Errorf("%w: coalesced recv edge %q not set up on %s", ErrComm, key, e.Task)
	}
	return m, nil
}

func (e *Env) coalRecvGroup(key string) (*coalRecvGroup, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g, ok := e.coalRecvGroups[key]
	if !ok {
		return nil, fmt.Errorf("%w: coalesce group %q not set up on %s", ErrComm, key, e.Task)
	}
	return g, nil
}

func (e *Env) client(task string) (*rpc.Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.rpcClients[task]
	if !ok {
		return nil, fmt.Errorf("%w: no RPC client for task %q on %s", ErrComm, task, e.Task)
	}
	return c, nil
}

func (e *Env) mailbox(key string) *mailbox {
	e.mu.Lock()
	defer e.mu.Unlock()
	mb, ok := e.mailboxes[key]
	if !ok {
		mb = newMailbox()
		e.mailboxes[key] = mb
	}
	return mb
}
