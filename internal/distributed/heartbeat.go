package distributed

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/rdma"
)

// Control-plane failure detection: every task's device answers a lease ping
// over the vanilla-RPC seam (the §3.1 auxiliary channel — membership is
// control-plane traffic, like address distribution), and one monitor device
// pings each task once per period. A task that stays silent past the lease
// timeout is declared dead exactly once per outage; the recovery driver
// confirms the expiry, suspends the lease while it rebuilds, and resumes it
// once the task has rejoined.

// leasePingMethod is the device-RPC method every server answers; the
// monitor's echo round-trip is one heartbeat.
const leasePingMethod = "lease.ping"

// monitorEndpoint is the detector's own fabric address. It is a device like
// any other, so its pings traverse the same QPs, hooks, and partitions as
// data traffic — a partitioned task really does look dead.
const monitorEndpoint = "hb-monitor"

// HeartbeatConfig tunes the lease failure detector.
type HeartbeatConfig struct {
	// Period between lease pings to each task (default 10ms).
	Period time.Duration
	// Timeout is the lease duration: a task that has not acked a ping for
	// this long is declared dead (default 10 × Period).
	Timeout time.Duration
}

func (h *HeartbeatConfig) setDefaults() {
	if h.Period <= 0 {
		h.Period = 10 * time.Millisecond
	}
	if h.Timeout <= 0 {
		h.Timeout = 10 * h.Period
	}
}

// heartbeatDetector runs one watcher goroutine per task, tracking the last
// acknowledged ping and firing onExpire once when a lease lapses.
type heartbeatDetector struct {
	cfg HeartbeatConfig
	mon *rdma.Device
	met *metrics.Recovery
	// onExpire runs on its own goroutine, at most once per outage.
	onExpire func(task string)

	mu        sync.Mutex
	lastAck   map[string]time.Time
	expired   map[string]bool
	suspended map[string]bool

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

func newHeartbeatDetector(fabric *rdma.Fabric, tasks []string, cfg HeartbeatConfig,
	met *metrics.Recovery, onExpire func(task string)) (*heartbeatDetector, error) {
	cfg.setDefaults()
	mon, err := rdma.CreateDevice(fabric, rdma.Config{
		Endpoint: monitorEndpoint, NumCQs: 1, QPsPerPeer: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: creating heartbeat monitor: %w", ErrSetup, err)
	}
	d := &heartbeatDetector{
		cfg: cfg, mon: mon, met: met, onExpire: onExpire,
		lastAck:   make(map[string]time.Time, len(tasks)),
		expired:   make(map[string]bool, len(tasks)),
		suspended: make(map[string]bool, len(tasks)),
		stopCh:    make(chan struct{}),
	}
	now := time.Now()
	for _, task := range tasks {
		d.lastAck[task] = now
	}
	return d, nil
}

func (d *heartbeatDetector) start() {
	d.mu.Lock()
	tasks := make([]string, 0, len(d.lastAck))
	for task := range d.lastAck {
		tasks = append(tasks, task)
	}
	d.mu.Unlock()
	for _, task := range tasks {
		d.wg.Add(1)
		go d.watch(task)
	}
}

// watch is the per-task lease loop. A ping is a device-RPC echo; channels to
// a restarted endpoint keep working because the fabric resolves the endpoint
// name per message, so one watcher spans task incarnations.
func (d *heartbeatDetector) watch(task string) {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-ticker.C:
		}
		ok := false
		if ch, err := d.mon.GetChannel(task, 0); err == nil {
			// The call deadline is the lease itself: a slow ack that lands
			// within the lease still renews it, while a dead peer fails the
			// send in microseconds (ErrNoSuchPeer / ErrUnreachable).
			_, cerr := ch.Call(leasePingMethod, nil, d.cfg.Timeout)
			ok = cerr == nil
		}
		d.note(task, ok)
	}
}

func (d *heartbeatDetector) note(task string, ok bool) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.suspended[task] {
		return
	}
	if ok {
		d.met.AddHeartbeat()
		d.lastAck[task] = now
		return
	}
	d.met.AddMissedBeat()
	if d.expired[task] || now.Sub(d.lastAck[task]) < d.cfg.Timeout {
		return
	}
	d.expired[task] = true
	d.met.AddLeaseExpiry()
	if d.onExpire != nil {
		go d.onExpire(task)
	}
}

// confirmDead blocks until the detector has expired the task's lease, or
// until wait elapses. Recovery uses it so a step error that outraces the
// detector still waits for (and asserts) lease-based detection.
func (d *heartbeatDetector) confirmDead(task string, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		d.mu.Lock()
		ex := d.expired[task]
		d.mu.Unlock()
		if ex {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(d.cfg.Period / 4)
	}
}

// suspend pauses a task's lease while recovery rebuilds it, so the restart
// window is not scored as a second outage.
func (d *heartbeatDetector) suspend(task string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.suspended[task] = true
}

// resume restores a task's lease with a fresh grant.
func (d *heartbeatDetector) resume(task string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastAck[task] = time.Now()
	d.expired[task] = false
	d.suspended[task] = false
}

func (d *heartbeatDetector) stop() {
	d.stopOnce.Do(func() { close(d.stopCh) })
	d.wg.Wait()
	d.mon.Close()
}
