package distributed

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/rdma"
)

// Topology ablation benchmarks behind scripts/bench.sh's
// BENCH_allreduce.json: the same data-parallel MLP trained over ps, ring,
// and tree at 2/4/8 tasks.
//
// The raw emulator moves bytes at memory bandwidth, which would hide the
// one thing this ablation is about: the PS NIC serializing N gradient
// pushes while ring neighbors stream concurrently. TransferDelay cannot
// express that either — it sleeps per transfer on concurrent QP
// goroutines, so ten transfers into one NIC cost the same as one. The
// PathDelay hook sees the endpoints, letting a busy-until timeline per NIC
// direction serialize shared-NIC transfers exactly the way a shared link
// drains in hardware, while disjoint ring edges still overlap.

const (
	benchNICNsPerByte = 48                   // modeled per-NIC-direction bandwidth: ~20.8 MB/s
	benchNICPostCost  = 2 * time.Microsecond // fixed per-WR latency
)

// nicTimeline is the endpoint-aware contention model: every one-sided
// transfer occupies its source NIC's tx direction and its destination
// NIC's rx direction for the wire time, FIFO per direction.
type nicTimeline struct {
	mu   sync.Mutex
	busy map[string]time.Time
}

func newNICTimeline() *nicTimeline {
	return &nicTimeline{busy: make(map[string]time.Time)}
}

func (n *nicTimeline) delay(_ rdma.Op, size int, src, dst string) time.Duration {
	wire := benchNICPostCost + time.Duration(size)*benchNICNsPerByte*time.Nanosecond
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	start := now
	if t := n.busy[src+"/tx"]; t.After(start) {
		start = t
	}
	if t := n.busy[dst+"/rx"]; t.After(start) {
		start = t
	}
	end := start.Add(wire)
	n.busy[src+"/tx"] = end
	n.busy[dst+"/rx"] = end
	return end.Sub(now)
}

// BenchmarkAllReduceTopology trains the benchmark MLP one synchronous step
// per iteration and reports per-task gradient goodput (the full gradient
// state is exchanged every step) plus the profiler's communication share.
func BenchmarkAllReduceTopology(b *testing.B) {
	const in, hidden, classes, batch = 512, 512, 64, 8
	gradBytes := int64(in*hidden+hidden+hidden*classes+classes) * 4
	for _, topo := range []string{"ps", "ring", "tree"} {
		for _, tasks := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("topo=%s/tasks=%d", topo, tasks), func(b *testing.B) {
				mcfg := MLPConfig{Workers: tasks, PSCount: 1, Batch: batch,
					In: in, Hidden: hidden, Classes: classes, LR: 0.05, Topology: topo}
				job, err := BuildMLPTraining(mcfg, 99)
				if err != nil {
					b.Fatal(err)
				}
				cl, err := Launch(job.Builder, Config{
					Kind:        RDMA,
					ArenaBytes:  64 << 20,
					PollTimeout: 60 * time.Second,
					Transfer:    rdma.TransferOpts{Deadline: 60 * time.Second},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				if err := job.InitAll(cl); err != nil {
					b.Fatal(err)
				}
				cl.Fabric().SetHooks(rdma.Hooks{PathDelay: newNICTimeline().delay})
				feeds := job.SyntheticDataset(7)
				fetches := make(map[string][]string)
				for k, task := range job.WorkerTasks {
					fetches[task] = []string{job.LossName(k)}
				}
				// One warm-up step outside the clock (edge setup, arenas).
				if _, err := cl.Step(0, feeds, fetches); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					if _, err := cl.Step(i+1, feeds, fetches); err != nil {
						b.Fatal(err)
					}
				}
				elapsed := time.Since(start)
				b.StopTimer()
				stepSec := elapsed.Seconds() / float64(b.N)
				b.ReportMetric(float64(gradBytes)/1e6/stepSec, "MB/s/task")
				b.ReportMetric(stepSec*1e3, "ms/step")
				b.ReportMetric(commShare(cl.StepSummaries(), job.WorkerTasks), "comm_frac")
			})
		}
	}
}

// BenchmarkScale is the BENCH_scale.json story: per-task gradient goodput
// for the single PS, the K=2 sharded PS, and the ring at 4 and 8 tasks,
// under the same nicTimeline contention model as the topology ablation. The
// claim under test: at 8 tasks the single PS NIC serializes 2·N·G bytes and
// per-task goodput collapses, while splitting the buckets across two shard
// NICs recovers roughly half the incast — bit-identical parameters on the
// same seed (the parity suite pins that) at materially higher goodput.
//
// Shard placement is bucket-granular and a variable never splits across
// buckets, so the model is a symmetric MLP (in == classes) whose two weight
// matrices carry equal gradient mass: the greedy least-loaded shard map
// puts them on different shard tasks and the incast genuinely halves. A
// model dominated by one giant tensor would pin its whole bucket to one
// shard and cap the win at that bucket's share.
func BenchmarkScale(b *testing.B) {
	const in, hidden, classes, batch = 256, 512, 256, 8
	gradBytes := int64(in*hidden+hidden+hidden*classes+classes) * 4
	for _, topo := range []string{"ps", "sharded-ps", "ring"} {
		for _, tasks := range []int{4, 8} {
			b.Run(fmt.Sprintf("topo=%s/tasks=%d", topo, tasks), func(b *testing.B) {
				mcfg := MLPConfig{Workers: tasks, PSCount: 1, Batch: batch,
					In: in, Hidden: hidden, Classes: classes, LR: 0.05, Topology: topo}
				if topo == "sharded-ps" {
					mcfg.PSShards = 2
				}
				job, err := BuildMLPTraining(mcfg, 99)
				if err != nil {
					b.Fatal(err)
				}
				cl, err := Launch(job.Builder, Config{
					Kind:        RDMA,
					ArenaBytes:  64 << 20,
					PollTimeout: 60 * time.Second,
					Transfer:    rdma.TransferOpts{Deadline: 60 * time.Second},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				if err := job.InitAll(cl); err != nil {
					b.Fatal(err)
				}
				cl.Fabric().SetHooks(rdma.Hooks{PathDelay: newNICTimeline().delay})
				feeds := job.SyntheticDataset(7)
				fetches := make(map[string][]string)
				for k, task := range job.WorkerTasks {
					fetches[task] = []string{job.LossName(k)}
				}
				if _, err := cl.Step(0, feeds, fetches); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					if _, err := cl.Step(i+1, feeds, fetches); err != nil {
						b.Fatal(err)
					}
				}
				elapsed := time.Since(start)
				b.StopTimer()
				stepSec := elapsed.Seconds() / float64(b.N)
				b.ReportMetric(float64(gradBytes)/1e6/stepSec, "MB/s/task")
				b.ReportMetric(stepSec*1e3, "ms/step")
				b.ReportMetric(commShare(cl.StepSummaries(), job.WorkerTasks), "comm_frac")
				b.ReportMetric(commPollShare(cl.StepSummaries(), job.WorkerTasks), "commpoll_frac")
			})
		}
	}
}

// commPollShare widens commShare to the full communication-bound worker
// share: communication-occupied time plus poll-wait time (workers spinning
// on not-yet-landed receive flags) over total accounted worker time. The
// batched completion scan shows up here — fewer lock round-trips per ready
// flag means less of the step is poll-bound.
func commPollShare(sums map[string]metrics.StepSummary, workerTasks []string) float64 {
	var bound, wall time.Duration
	for _, task := range workerTasks {
		s, ok := sums[task]
		if !ok || s.Steps == 0 {
			continue
		}
		bound += s.Totals.Comm + s.Totals.PollWait
		wall += s.Totals.Wall * time.Duration(s.Totals.Workers)
	}
	if wall <= 0 {
		return 0
	}
	return float64(bound) / float64(wall)
}

// commShare is the PR-5 profiler's communication fraction across the
// worker tasks: communication-occupied worker time (sync kernels + async
// dispatch) over total accounted worker time.
func commShare(sums map[string]metrics.StepSummary, workerTasks []string) float64 {
	var comm, wall time.Duration
	for _, task := range workerTasks {
		s, ok := sums[task]
		if !ok || s.Steps == 0 {
			continue
		}
		comm += s.Totals.Comm
		wall += s.Totals.Wall * time.Duration(s.Totals.Workers)
	}
	if wall <= 0 {
		return 0
	}
	return float64(comm) / float64(wall)
}
