package distributed

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// runTransferTraining is runPSChaosTraining with a configurable PS count:
// psCount=1 places both variables on ps0, so the per-pair coalesce groups
// carry multiple sub-messages per batch. Seeds match the other helpers, so
// runs with equal psCount are bit-comparable across transfer configs.
func runTransferTraining(t *testing.T, cfg Config, psCount, iters int,
	afterLaunch func(*Cluster)) ([]float32, []float32, []float32, map[string]metrics.CommSnapshot, error) {
	t.Helper()
	const workers, batch, in, classes = 2, 8, 12, 4
	b, workerTasks := buildPSTraining(t, workers, psCount, batch, in, classes, 0.2)
	cl, err := Launch(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rng := rand.New(rand.NewSource(99))
	if err := cl.InitVariable("w", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("bias", nil); err != nil {
		t.Fatal(err)
	}
	feeds := make(map[string]map[string]*tensor.Tensor)
	fetches := make(map[string][]string)
	dataRng := rand.New(rand.NewSource(7))
	for k, task := range workerTasks {
		x := tensor.New(tensor.Float32, batch, in)
		labels := tensor.New(tensor.Int32, batch)
		tensor.RandomUniform(x, dataRng, 1)
		tensor.RandomLabels(labels, dataRng, classes)
		feeds[task] = map[string]*tensor.Tensor{
			fmt.Sprintf("x%d", k):      x,
			fmt.Sprintf("labels%d", k): labels,
		}
		fetches[task] = []string{fmt.Sprintf("loss%d", k)}
	}
	if afterLaunch != nil {
		afterLaunch(cl)
	}
	var losses []float32
	for iter := 0; iter < iters; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			return losses, nil, nil, cl.MetricsSnapshot(), err
		}
		var sum float32
		for k, task := range workerTasks {
			sum += out[task][fmt.Sprintf("loss%d", k)].Float32s()[0]
		}
		losses = append(losses, sum/float32(workers))
	}
	wT, err := cl.VarTensor("w")
	if err != nil {
		t.Fatal(err)
	}
	biasT, err := cl.VarTensor("bias")
	if err != nil {
		t.Fatal(err)
	}
	w := append([]float32(nil), wT.Float32s()...)
	bias := append([]float32(nil), biasT.Float32s()...)
	return losses, w, bias, cl.MetricsSnapshot(), nil
}

// TestStripedCoalescedTrainingParity: striping, coalescing, and both
// combined must train bit-identically to the plain RDMA mechanism — same
// losses, same final variables — while the metrics prove the new paths
// actually ran (multiple lanes used; batches flushed).
func TestStripedCoalescedTrainingParity(t *testing.T) {
	base := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 8 * time.Second},
	}
	const psCount, steps = 1, 12
	refLosses, refW, refBias, _, err := runTransferTraining(t, base, psCount, steps, nil)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	// In the combined variant the threshold sits between the two payload
	// sizes (bias 16B, w 192B) so the same run exercises both mechanisms:
	// bias edges coalesce, w edges stripe. At 256 everything would coalesce
	// and striping would (correctly) never engage.
	variants := []struct {
		name              string
		stripes, coalesce int
	}{
		{"striped", 4, 0},
		{"coalesced", 0, 256},
		{"striped+coalesced", 4, 100},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := base
			cfg.Transfer.Stripes = v.stripes
			cfg.Transfer.CoalesceThreshold = v.coalesce
			losses, w, bias, ms, err := runTransferTraining(t, cfg, psCount, steps, nil)
			if err != nil {
				t.Fatalf("%s run: %v", v.name, err)
			}
			for i := range refLosses {
				if losses[i] != refLosses[i] {
					t.Fatalf("loss[%d] = %v, baseline %v: transfer path changed the numbers", i, losses[i], refLosses[i])
				}
			}
			for i := range refW {
				if w[i] != refW[i] {
					t.Fatalf("w[%d] = %v, baseline %v", i, w[i], refW[i])
				}
			}
			for i := range refBias {
				if bias[i] != refBias[i] {
					t.Fatalf("bias[%d] = %v, baseline %v", i, bias[i], refBias[i])
				}
			}
			var striped, flushes, msgs int64
			maxLanes := 0
			for _, s := range ms {
				striped += s.StripedTransfers
				flushes += s.CoalesceFlushes
				msgs += s.CoalescedMessages
				if l := s.ActiveLanes(); l > maxLanes {
					maxLanes = l
				}
			}
			if v.stripes > 1 {
				if striped == 0 {
					t.Error("striping enabled but no striped transfers counted")
				}
				if maxLanes < 2 {
					t.Errorf("striping enabled but at most %d lane active", maxLanes)
				}
			}
			if v.coalesce > 0 {
				if flushes == 0 {
					t.Error("coalescing enabled but no batches flushed")
				}
				if msgs < flushes {
					t.Errorf("%d coalesced messages over %d flushes", msgs, flushes)
				}
			} else if flushes != 0 {
				t.Errorf("coalescing disabled but %d batches flushed", flushes)
			}
		})
	}
}

// TestStripedCoalescedTrainingSurvivesDrops: the combined striped+coalesced
// configuration must retry through random transfer drops with no corruption:
// bit-identical to its own fault-free run.
func TestStripedCoalescedTrainingSurvivesDrops(t *testing.T) {
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer: rdma.TransferOpts{
			Deadline:          8 * time.Second,
			Stripes:           4,
			CoalesceThreshold: 100, // bias coalesces, w stripes — both paths under fire
		},
	}
	const psCount, steps = 1, 15
	cleanLosses, cleanW, cleanBias, _, err := runTransferTraining(t, cfg, psCount, steps, nil)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	var inj *chaos.Injector
	losses, w, bias, ms, err := runTransferTraining(t, cfg, psCount, steps, func(cl *Cluster) {
		inj = chaos.New(chaos.Plan{
			Seed:     23,
			DropRate: 0.12,
			Metrics:  cl.Server("worker0").Metrics,
		})
		inj.Install(cl.Fabric())
		inj.Start()
	})
	defer inj.Stop()
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if got := inj.Counters().Injected[chaos.Drop]; got == 0 {
		t.Fatal("no drops injected; chaos exercised nothing")
	}
	var retries int64
	for _, s := range ms {
		retries += s.Retries
	}
	if retries == 0 {
		t.Error("no retries recorded despite injected drops")
	}
	for i := range cleanLosses {
		if losses[i] != cleanLosses[i] {
			t.Fatalf("loss[%d] = %v under drops, %v clean", i, losses[i], cleanLosses[i])
		}
	}
	for i := range cleanW {
		if w[i] != cleanW[i] {
			t.Fatalf("w[%d] = %v under drops, %v clean", i, w[i], cleanW[i])
		}
	}
	for i := range cleanBias {
		if bias[i] != cleanBias[i] {
			t.Fatalf("bias[%d] = %v under drops, %v clean", i, bias[i], cleanBias[i])
		}
	}
}

// TestStripedCoalescedPartitionFailsTyped: a never-healing partition under
// the combined configuration fails the step with the typed edge timeout (or
// the executor's progress timeout on the starved side) within the deadline.
func TestStripedCoalescedPartitionFailsTyped(t *testing.T) {
	cfg := Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 2 * time.Second,
		Transfer: rdma.TransferOpts{
			Deadline:          1 * time.Second,
			Stripes:           4,
			CoalesceThreshold: 256,
		},
	}
	start := time.Now()
	_, _, _, _, err := runTransferTraining(t, cfg, 1, 20, func(cl *Cluster) {
		cl.Fabric().Partition("ps0", "worker0")
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("training succeeded across a never-healing partition")
	}
	if !errors.Is(err, ErrEdgeTimeout) && !errors.Is(err, exec.ErrPollTimeout) {
		t.Fatalf("err = %v, want ErrEdgeTimeout or exec.ErrPollTimeout", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("typed failure took %v; deadlines were 1s/2s", elapsed)
	}
	t.Logf("failed as expected after %v: %v", elapsed, err)
}
