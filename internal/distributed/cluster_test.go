package distributed

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transport"
)

// buildPSTraining constructs a data-parallel softmax classifier: each
// worker holds a replica computing gradients against shared variables that
// live on parameter servers (round-robin), which sum the workers' gradients
// and apply SGD — the architecture of the paper's Figure 3.
func buildPSTraining(t testing.TB, workers, psCount, batch, in, classes int, lr float32) (*graph.Builder, []string) {
	t.Helper()
	b := graph.NewBuilder()
	psTask := func(i int) string { return fmt.Sprintf("ps%d", i%psCount) }

	b.OnTask(psTask(0))
	w := b.Variable("w", graph.Static(tensor.Float32, in, classes))
	b.OnTask(psTask(1))
	bias := b.Variable("bias", graph.Static(tensor.Float32, classes))

	workerGrads := make(map[*graph.Node][]*graph.Node) // var -> per-worker grads
	var tasks []string
	for k := 0; k < workers; k++ {
		task := fmt.Sprintf("worker%d", k)
		tasks = append(tasks, task)
		b.OnTask(task)
		x := b.Placeholder(fmt.Sprintf("x%d", k), graph.Static(tensor.Float32, batch, in))
		labels := b.Placeholder(fmt.Sprintf("labels%d", k), graph.Static(tensor.Int32, batch))
		logits := b.BiasAdd(fmt.Sprintf("logits%d", k), b.MatMul(fmt.Sprintf("mm%d", k), x, w), bias)
		loss := b.SoftmaxXent(fmt.Sprintf("loss%d", k), logits, labels)
		grads, err := graph.Gradients(b, loss, []*graph.Node{w, bias})
		if err != nil {
			t.Fatal(err)
		}
		workerGrads[w] = append(workerGrads[w], grads[w])
		workerGrads[bias] = append(workerGrads[bias], grads[bias])
	}
	// Parameter-server side: sum the workers' gradients, apply SGD.
	for v, grads := range workerGrads {
		b.OnTask(v.Task())
		sum := grads[0]
		for i := 1; i < len(grads); i++ {
			sum = b.Add(fmt.Sprintf("gsum%s_%d", v.Name(), i), sum, grads[i])
		}
		b.ApplySGD("apply_"+v.Name(), v, sum, lr)
	}
	return b, tasks
}

// trainCluster runs iterations of the PS graph and returns the per-
// iteration mean loss across workers.
func trainCluster(t testing.TB, kind Kind, workers, iters int) ([]float32, *Cluster) {
	t.Helper()
	const batch, in, classes, psCount = 8, 12, 4, 2
	b, workerTasks := buildPSTraining(t, workers, psCount, batch, in, classes, 0.2)
	cfg := Config{
		Kind:       kind,
		ArenaBytes: 1 << 20,
		RingCfg:    transport.RingConfig{Slots: 16, SlotSize: 8 << 10},
	}
	cl, err := Launch(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	if err := cl.InitVariable("w", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("bias", nil); err != nil {
		t.Fatal(err)
	}

	// Fixed synthetic dataset per worker (so runs are comparable across
	// mechanisms).
	feeds := make(map[string]map[string]*tensor.Tensor)
	fetches := make(map[string][]string)
	dataRng := rand.New(rand.NewSource(7))
	for k, task := range workerTasks {
		x := tensor.New(tensor.Float32, batch, in)
		labels := tensor.New(tensor.Int32, batch)
		tensor.RandomUniform(x, dataRng, 1)
		tensor.RandomLabels(labels, dataRng, classes)
		feeds[task] = map[string]*tensor.Tensor{
			fmt.Sprintf("x%d", k):      x,
			fmt.Sprintf("labels%d", k): labels,
		}
		fetches[task] = []string{fmt.Sprintf("loss%d", k)}
	}

	var losses []float32
	for iter := 0; iter < iters; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			t.Fatal(err)
		}
		var sum float32
		for k, task := range workerTasks {
			sum += out[task][fmt.Sprintf("loss%d", k)].Float32s()[0]
		}
		losses = append(losses, sum/float32(len(workerTasks)))
	}
	return losses, cl
}

func TestPSTrainingAllMechanisms(t *testing.T) {
	kinds := []Kind{GRPCTCP, GRPCRDMA, RDMA, RDMACopy}
	finals := make(map[Kind]float32)
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			losses, cl := trainCluster(t, kind, 2, 15)
			defer cl.Close()
			first, last := losses[0], losses[len(losses)-1]
			if last > first*0.7 {
				t.Errorf("loss did not drop: first %v last %v (%v)", first, last, losses)
			}
			finals[kind] = last
		})
	}
	// All mechanisms compute the same math: final losses must agree.
	var ref float32
	var refKind Kind
	for kind, l := range finals {
		ref, refKind = l, kind
		break
	}
	for kind, l := range finals {
		d := l - ref
		if d < 0 {
			d = -d
		}
		if d > 1e-3 {
			t.Errorf("final loss differs: %v=%v vs %v=%v", kind, l, refKind, ref)
		}
	}
}

func TestZeroCopyMetrics(t *testing.T) {
	// With graph analysis on, sender-side copies happen only during the
	// tracing iteration; afterwards every transfer is zero-copy.
	_, cl := trainCluster(t, RDMA, 2, 6)
	defer cl.Close()
	var copiesAfterTrace, zero int64
	for _, m := range cl.MetricsSnapshot() {
		copiesAfterTrace += m.MemCopies
		zero += m.ZeroCopyOps
	}
	if zero == 0 {
		t.Error("no zero-copy transfers recorded")
	}
	// 6 iterations, 8 edges (2 grads + 2 weights, x2 workers): iteration 0
	// pays at most one copy per edge; later iterations none.
	if copiesAfterTrace > 8 {
		t.Errorf("memcopies = %d, want <= 8 (tracing iteration only)", copiesAfterTrace)
	}

	// The ablation keeps copying forever.
	_, cl2 := trainCluster(t, RDMACopy, 2, 6)
	defer cl2.Close()
	var copies2 int64
	for _, m := range cl2.MetricsSnapshot() {
		copies2 += m.MemCopies
	}
	if copies2 < 8*5 {
		t.Errorf("RDMA.cp made only %d copies, expected one per edge per iteration", copies2)
	}
}

func TestSerializationOnlyInRPC(t *testing.T) {
	_, cl := trainCluster(t, GRPCRDMA, 2, 4)
	defer cl.Close()
	var ser int64
	for _, m := range cl.MetricsSnapshot() {
		ser += m.SerializedBytes
	}
	if ser == 0 {
		t.Error("gRPC mechanism recorded no serialization")
	}
	_, cl2 := trainCluster(t, RDMA, 2, 4)
	defer cl2.Close()
	for task, m := range cl2.MetricsSnapshot() {
		if m.SerializedBytes != 0 {
			t.Errorf("RDMA mechanism serialized %d bytes on %s", m.SerializedBytes, task)
		}
	}
}

func TestDynamicEdgeTransfer(t *testing.T) {
	// A dynamic-shaped tensor crossing servers exercises the §3.3 protocol
	// (RdmaSendDyn/RdmaRecvDyn) under the RDMA mechanism and the RPC path
	// under gRPC.
	for _, kind := range []Kind{RDMA, GRPCTCP, GRPCRDMA} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			b := graph.NewBuilder()
			b.OnTask("worker0")
			x := b.Placeholder("x", graph.Dyn(tensor.Float32, -1, 4))
			double := b.Scale("double", x, 2)
			b.OnTask("ps0")
			sink := b.ReduceMax("sink", double)
			_ = sink
			cl, err := Launch(b, Config{Kind: kind, ArenaBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if kind == RDMA {
				if len(cl.Result().DynamicEdges()) != 1 {
					t.Fatalf("expected one dynamic edge, got %+v", cl.Result().Edges)
				}
			}
			for iter, batch := range []int{2, 5, 1, 7} {
				x := tensor.New(tensor.Float32, batch, 4)
				x.Fill(float32(iter + 1))
				out, err := cl.Step(iter,
					map[string]map[string]*tensor.Tensor{"worker0": {"x": x}},
					map[string][]string{"ps0": {"sink"}})
				if err != nil {
					t.Fatal(err)
				}
				got := out["ps0"]["sink"].Float32s()[0]
				want := float32(2 * (iter + 1))
				if got != want {
					t.Errorf("iter %d: sink = %v, want %v", iter, got, want)
				}
			}
		})
	}
}

func TestInitVariableErrors(t *testing.T) {
	b := graph.NewBuilder()
	b.OnTask("ps0")
	b.Variable("w", graph.Static(tensor.Float32, 2))
	x := b.Placeholder("x", graph.Static(tensor.Float32, 2))
	b.OnTask("worker0")
	b.Identity("use", x)
	cl, err := Launch(b, Config{Kind: RDMA, ArenaBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.InitVariable("nope", nil); !errors.Is(err, graph.ErrNotFound) {
		t.Errorf("unknown variable: %v", err)
	}
	if err := cl.InitVariable("x", nil); !errors.Is(err, ErrSetup) {
		t.Errorf("non-variable: %v", err)
	}
	if err := cl.InitVariable("w", nil); err != nil {
		t.Errorf("valid init: %v", err)
	}
	if err := cl.InitVariable("w", nil); err == nil {
		t.Error("double init accepted")
	}
	if _, err := cl.VarTensor("w"); err != nil {
		t.Errorf("VarTensor: %v", err)
	}
}

func TestStagedVariableIsZeroCopySource(t *testing.T) {
	// Under the zero-copy mechanism a transferred variable's storage IS the
	// staging slot, so the weight push needs no copy even at iteration 0.
	b := graph.NewBuilder()
	b.OnTask("ps0")
	w := b.Variable("w", graph.Static(tensor.Float32, 8))
	b.OnTask("worker0")
	b.Identity("use", w)
	cl, err := Launch(b, Config{Kind: RDMA, ArenaBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.InitVariable("w", func(t *tensor.Tensor) { t.Fill(3) }); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 3; iter++ {
		out, err := cl.Step(iter, nil, map[string][]string{"worker0": {"use"}})
		if err != nil {
			t.Fatal(err)
		}
		if out["worker0"]["use"].Float32s()[0] != 3 {
			t.Errorf("iter %d: got %v", iter, out["worker0"]["use"].Float32s()[0])
		}
	}
	ps := cl.Server("ps0").Metrics.Snapshot()
	if ps.MemCopies != 0 {
		t.Errorf("weight push made %d copies, want 0", ps.MemCopies)
	}
	if ps.ZeroCopyOps == 0 {
		t.Error("no zero-copy pushes recorded")
	}
}

func TestMechanismStrings(t *testing.T) {
	if GRPCTCP.String() != "gRPC.TCP" || GRPCRDMA.String() != "gRPC.RDMA" ||
		RDMA.String() != "RDMA.zerocp" || RDMACopy.String() != "RDMA.cp" {
		t.Error("mechanism names wrong")
	}
	if !GRPCTCP.UsesRPC() || RDMA.UsesRPC() {
		t.Error("UsesRPC wrong")
	}
	if !RDMA.ZeroCopy() || RDMACopy.ZeroCopy() {
		t.Error("ZeroCopy wrong")
	}
}

func TestTraceIntegration(t *testing.T) {
	job, err := BuildMLPTraining(MLPConfig{
		Workers: 2, PSCount: 1, Batch: 4,
		In: 8, Hidden: 8, Classes: 3, LR: 0.1,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	cl, err := Launch(job.Builder, Config{Kind: RDMA, ArenaBytes: 1 << 20, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := job.InitAll(cl); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Step(0, job.SyntheticDataset(1), nil); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	// Every task contributes a lane; send/recv operators appear.
	lanes := map[string]bool{}
	cats := map[string]bool{}
	for _, e := range rec.Events() {
		lanes[e.PID] = true
		cats[e.Category] = true
	}
	for _, task := range []string{"worker0", "worker1", "ps0"} {
		if !lanes[task] {
			t.Errorf("no trace lane for %s", task)
		}
	}
	if !cats["RdmaSend"] || !cats["RdmaRecv"] {
		t.Errorf("transfer operators missing from trace categories: %v", cats)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty trace JSON")
	}
}

func TestLaunchFailurePaths(t *testing.T) {
	// Builder already failed: Launch must surface the construction error.
	b := graph.NewBuilder()
	b.Identity("bad", nil)
	if _, err := Launch(b, Config{Kind: RDMA}); err == nil {
		t.Error("failed builder accepted")
	}
	// Cross-task control dependencies are rejected by the partitioner.
	b2 := graph.NewBuilder()
	b2.OnTask("a")
	x := b2.Placeholder("x", graph.Static(tensor.Float32, 1))
	b2.OnTask("b")
	y := b2.Placeholder("y", graph.Static(tensor.Float32, 1))
	b2.ControlDep(y, x)
	if _, err := Launch(b2, Config{Kind: RDMA}); err == nil {
		t.Error("cross-task control dep accepted")
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	b := graph.NewBuilder()
	b.OnTask("a")
	x := b.Placeholder("x", graph.Static(tensor.Float32, 1))
	b.OnTask("b")
	b.Identity("y", x)
	cl, err := Launch(b, Config{Kind: GRPCTCP})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close()
}

func TestOptimizerVariantsOverPS(t *testing.T) {
	// Momentum and Adam run their in-place updates on the PS while weights
	// stream to workers zero-copy; slot variables must not disturb the
	// staging placement.
	for _, opt := range []string{"momentum", "adam"} {
		opt := opt
		t.Run(opt, func(t *testing.T) {
			job, err := BuildMLPTraining(MLPConfig{
				Workers: 2, PSCount: 2, Batch: 8,
				In: 12, Hidden: 16, Classes: 4, LR: 0.05,
				Optimizer: opt,
			}, 3)
			if err != nil {
				t.Fatal(err)
			}
			cl, err := Launch(job.Builder, Config{Kind: RDMA, ArenaBytes: 4 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if err := job.InitAll(cl); err != nil {
				t.Fatal(err)
			}
			feeds := job.SyntheticDataset(4)
			fetches := map[string][]string{}
			for k, task := range job.WorkerTasks {
				fetches[task] = []string{job.LossName(k)}
			}
			var first, last float32
			for iter := 0; iter < 25; iter++ {
				out, err := cl.Step(iter, feeds, fetches)
				if err != nil {
					t.Fatal(err)
				}
				var sum float32
				for k, task := range job.WorkerTasks {
					sum += out[task][job.LossName(k)].Float32s()[0]
				}
				if iter == 0 {
					first = sum / 2
				}
				last = sum / 2
			}
			if last > first*0.7 {
				t.Errorf("%s over PS did not converge: %v -> %v", opt, first, last)
			}
			// Weight pushes stay zero-copy despite the slot updates.
			for _, ps := range []string{"ps0", "ps1"} {
				if m := cl.Server(ps).Metrics.Snapshot(); m.MemCopies != 0 {
					t.Errorf("%s on %s made %d weight-push copies", opt, ps, m.MemCopies)
				}
			}
		})
	}

	if _, err := BuildMLPTraining(MLPConfig{
		Workers: 1, PSCount: 1, Batch: 2, In: 2, Hidden: 2, Classes: 2,
		LR: 0.1, Optimizer: "adagrad",
	}, 1); !errors.Is(err, ErrSetup) {
		t.Errorf("unknown optimizer: %v", err)
	}
}
