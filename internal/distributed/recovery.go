package distributed

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// Elastic crash recovery (the PR's tentpole). The pieces:
//
//   - a heartbeat/lease failure detector (heartbeat.go) that declares a
//     silent task dead and aborts the in-flight step;
//   - periodic cluster-wide checkpoints taken at step boundaries, held in
//     memory per task (a restarted task needs its own variables back, store
//     merging cannot provide them);
//   - a recovery driver that, on a detected crash or a typed step failure,
//     severs the dead peer's QPs on every survivor, restarts the task under
//     its old endpoint name, re-runs the full edge setup (stripe lanes and
//     coalesce groups included), rebuilds the task's executor, rolls every
//     task back to the last completed checkpoint, and resumes the loop.
//
// Rolling back ALL tasks — not just the restarted one — is what makes the
// resumed run bit-identical to an uninterrupted one: a mid-step crash
// leaves survivors half-updated, and replaying from a consistent snapshot
// with deterministic kernels reproduces exactly the lost steps.

// RecoveryConfig parameterizes EnableRecovery.
type RecoveryConfig struct {
	// Heartbeat tunes the lease failure detector.
	Heartbeat HeartbeatConfig
	// CheckpointEvery takes a cluster-wide snapshot every N completed steps
	// (default 5). The step-0 baseline is always taken.
	CheckpointEvery int
	// MaxRecoveries bounds recovery rounds per Run (default 3): a crash loop
	// should surface, not spin.
	MaxRecoveries int
}

func (r *RecoveryConfig) setDefaults() {
	if r.CheckpointEvery <= 0 {
		r.CheckpointEvery = 5
	}
	if r.MaxRecoveries <= 0 {
		r.MaxRecoveries = 3
	}
}

// Recovery owns a cluster's failure detector and checkpoint/rollback state.
type Recovery struct {
	c   *Cluster
	cfg RecoveryConfig
	det *heartbeatDetector
	met *metrics.Recovery

	mu       sync.Mutex
	snaps    map[string][]byte // per-task VarStore snapshot at ckptIter
	ckptIter int
}

// EnableRecovery starts the heartbeat detector and returns the recovery
// driver. It requires a mechanism that runs over the emulated fabric (the
// detector's leases and the crash teardown act on devices and QPs).
func (c *Cluster) EnableRecovery(cfg RecoveryConfig) (*Recovery, error) {
	if c.cfg.Kind.UsesRPC() {
		return nil, fmt.Errorf("%w: recovery requires an RDMA mechanism, not %v", ErrSetup, c.cfg.Kind)
	}
	c.mu.RLock()
	already := c.recovery != nil
	c.mu.RUnlock()
	if already {
		return nil, fmt.Errorf("%w: recovery already enabled", ErrSetup)
	}
	cfg.setDefaults()
	r := &Recovery{c: c, cfg: cfg, met: &metrics.Recovery{}, snaps: make(map[string][]byte)}
	det, err := newHeartbeatDetector(c.fabric, c.result.Tasks, cfg.Heartbeat, r.met,
		func(task string) {
			c.abortAll(fmt.Errorf("lease expired for task %s", task))
		})
	if err != nil {
		return nil, err
	}
	r.det = det
	c.mu.Lock()
	c.recovery = r
	c.mu.Unlock()
	det.start()
	return r, nil
}

// Metrics returns the detector and recovery counters.
func (r *Recovery) Metrics() metrics.RecoverySnapshot { return r.met.Snapshot() }

// CheckpointIter reports the step the last completed checkpoint was taken
// at (the step a rollback resumes from).
func (r *Recovery) CheckpointIter() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ckptIter
}

func (r *Recovery) stop() { r.det.stop() }

// Run drives iters training steps with periodic checkpoints and crash
// recovery. onStep (optional) observes each completed step's fetches.
// Non-recoverable step errors — and crash loops past MaxRecoveries — are
// returned; everything the recovery protocol can handle is handled.
func (r *Recovery) Run(iters int, feeds map[string]map[string]*tensor.Tensor,
	fetches map[string][]string, onStep func(iter int, out map[string]map[string]*tensor.Tensor)) error {
	if err := r.checkpoint(0); err != nil {
		return err
	}
	recoveries := 0
	for iter := 0; iter < iters; {
		if r.shouldCheckpoint(iter) {
			if err := r.checkpoint(iter); err != nil {
				return err
			}
		}
		out, err := r.c.Step(iter, feeds, fetches)
		if err != nil {
			if !recoverableStepError(err) {
				return err
			}
			recoveries++
			if recoveries > r.cfg.MaxRecoveries {
				return fmt.Errorf("distributed: %d recoveries exhausted: %w", r.cfg.MaxRecoveries, err)
			}
			resumeIter, rerr := r.recover(err)
			if rerr != nil {
				return fmt.Errorf("distributed: recovering from step %d (%v): %w", iter, err, rerr)
			}
			iter = resumeIter
			continue
		}
		if onStep != nil {
			onStep(iter, out)
		}
		iter++
	}
	return nil
}

func (r *Recovery) shouldCheckpoint(iter int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return iter > 0 && iter != r.ckptIter && iter%r.cfg.CheckpointEvery == 0
}

// checkpoint snapshots every server's variable store at a step boundary.
// Snapshots are per task: a restarted task restores its own variables (and
// optimizer slots) from its own slice of the checkpoint.
func (r *Recovery) checkpoint(iter int) error {
	snaps := make(map[string][]byte)
	for task, srv := range r.c.serversSnapshot() {
		var buf bytes.Buffer
		if err := srv.VarStore.Save(&buf); err != nil {
			return fmt.Errorf("distributed: checkpointing %s at step %d: %w", task, iter, err)
		}
		snaps[task] = buf.Bytes()
	}
	r.mu.Lock()
	r.snaps, r.ckptIter = snaps, iter
	r.mu.Unlock()
	r.met.AddCheckpoint()
	return nil
}

// recoverableStepError reports whether a step failure is one the recovery
// protocol handles: an abort (detector-initiated or crash-propagated), a
// starved polling backstop, an exhausted edge, or a torn-down device. Setup
// bugs and non-transport failures propagate.
func recoverableStepError(err error) bool {
	return errors.Is(err, exec.ErrAborted) ||
		errors.Is(err, exec.ErrPollTimeout) ||
		errors.Is(err, ErrEdgeTimeout) ||
		errors.Is(err, rdma.ErrClosed) ||
		errors.Is(err, rdma.ErrNoSuchPeer)
}

// recover is the crash-recovery protocol. It returns the step to resume
// from (the last completed checkpoint).
func (r *Recovery) recover(cause error) (int, error) {
	// 1. Stop everything still running against the dead incarnation.
	r.c.abortAll(cause)
	// 2. Identify the crashed tasks: their devices are closed. A step that
	// failed with every device alive (e.g. a never-healing partition between
	// live tasks) is not a crash and recovery cannot fix it.
	dead := r.c.deadTasks()
	if len(dead) == 0 {
		return 0, fmt.Errorf("%w: step failed (%v) but every device is alive — not a crash", ErrSetup, cause)
	}
	// 3. The lease detector must agree within its configured timeout — the
	// data plane often notices first (a send fails in microseconds), but
	// membership decisions belong to the control plane. Then suspend the
	// lease so the rebuild window is not scored as a second outage.
	confirmBudget := r.det.cfg.Timeout + 4*r.det.cfg.Period + 250*time.Millisecond
	for _, task := range dead {
		if !r.det.confirmDead(task, confirmBudget) {
			return 0, fmt.Errorf("%w: device %s is down but its lease never expired", ErrSetup, task)
		}
		r.det.suspend(task)
	}
	// 4. Sever every survivor's QPs to the dead endpoints, then restart the
	// tasks under their old names. Ordering matters: no stale queued work
	// request may survive into the new incarnation's lifetime.
	for _, task := range dead {
		r.c.severPeer(task)
	}
	for _, task := range dead {
		if err := r.c.restartTask(task); err != nil {
			return 0, err
		}
		r.met.AddRejoin()
	}
	// 5. Rebuild the full edge state — slots, descriptors, stripe lanes,
	// coalesce groups — across all tasks, and fresh executors for the
	// restarted ones.
	if err := r.c.rebuildEdges(); err != nil {
		return 0, err
	}
	for _, task := range dead {
		if err := r.c.buildExecutor(r.c.Server(task)); err != nil {
			return 0, err
		}
	}
	// 6. Roll EVERY task back to the last completed checkpoint (see the
	// file comment for why survivors roll back too).
	r.mu.Lock()
	snaps, ckptIter := r.snaps, r.ckptIter
	r.mu.Unlock()
	for task, snap := range snaps {
		if err := r.c.restoreTask(task, snap); err != nil {
			return 0, err
		}
	}
	r.met.AddRollback()
	// 7. Leases resume; the loop replays from the checkpoint.
	for _, task := range dead {
		r.det.resume(task)
	}
	r.met.AddRecovery()
	return ckptIter, nil
}

// restoreTask rolls one task back to its slice of a checkpoint. Restores
// are in place; variables a restarted task no longer has are recreated with
// the same placement InitVariable would choose — a transferred graph
// variable goes back inside its sender staging slot (zero-copy, §3.4),
// everything else (optimizer slots) on the heap.
func (c *Cluster) restoreTask(task string, snap []byte) error {
	srv := c.Server(task)
	if srv == nil {
		return fmt.Errorf("%w: no server for task %q", ErrSetup, task)
	}
	return srv.VarStore.LoadInto(bytes.NewReader(snap),
		func(name string, dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error) {
			if node, err := c.result.Graph.Node(name); err == nil &&
				graph.IsVariable(node) && c.cfg.Kind.ZeroCopy() {
				srv.Env.mu.Lock()
				slot, staged := srv.Env.stagings[name]
				srv.Env.mu.Unlock()
				if staged {
					return slot.tensor, nil
				}
			}
			return tensor.New(dt, shape...), nil
		})
}
