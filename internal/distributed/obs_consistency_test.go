package distributed

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Metrics/trace consistency suite: the observability layer must not merely
// produce plausible numbers — its three independent record paths (Comm
// counters, histograms, trace spans) are wired at the same call sites, so
// they must agree exactly. These tests cross-check them against each other
// and against the step-time books after real training, with and without a
// mid-run crash + recovery rebuild.

// launchObsTraining launches a 3-task (2 workers + 1 PS) training cluster
// and returns feeds/fetches for stepping it.
func launchObsTraining(t *testing.T, cfg Config) (*Cluster,
	map[string]map[string]*tensor.Tensor, map[string][]string, []string) {
	t.Helper()
	const workers, psCount, batch, in, classes = 2, 1, 8, 12, 4
	b, workerTasks := buildPSTraining(t, workers, psCount, batch, in, classes, 0.2)
	cl, err := Launch(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	rng := rand.New(rand.NewSource(99))
	if err := cl.InitVariable("w", func(tt *tensor.Tensor) { tensor.GlorotInit(tt, rng) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitVariable("bias", nil); err != nil {
		t.Fatal(err)
	}
	feeds := make(map[string]map[string]*tensor.Tensor)
	fetches := make(map[string][]string)
	dataRng := rand.New(rand.NewSource(7))
	for k, task := range workerTasks {
		x := tensor.New(tensor.Float32, batch, in)
		labels := tensor.New(tensor.Int32, batch)
		tensor.RandomUniform(x, dataRng, 1)
		tensor.RandomLabels(labels, dataRng, classes)
		feeds[task] = map[string]*tensor.Tensor{
			fmt.Sprintf("x%d", k):      x,
			fmt.Sprintf("labels%d", k): labels,
		}
		fetches[task] = []string{fmt.Sprintf("loss%d", k)}
	}
	return cl, feeds, fetches, workerTasks
}

// checkByteConsistency asserts, for every task, that the per-edge histogram
// totals reproduce the Comm byte counters exactly: same call sites, same
// values, so any drift is a wiring bug.
func checkByteConsistency(t *testing.T, cl *Cluster) {
	t.Helper()
	comm := cl.MetricsSnapshot()
	hists := cl.HistSnapshots()
	for task, cs := range comm {
		hs, ok := hists[task]
		if !ok {
			t.Errorf("%s: no histogram set", task)
			continue
		}
		sent := metrics.FamilyTotal(hs.Families[metrics.HistEdgeSentBytes])
		recv := metrics.FamilyTotal(hs.Families[metrics.HistEdgeRecvBytes])
		if sent.Sum != cs.BytesSent {
			t.Errorf("%s: edge_sent_bytes sum %d != BytesSent %d", task, sent.Sum, cs.BytesSent)
		}
		if recv.Sum != cs.BytesRecv {
			t.Errorf("%s: edge_recv_bytes sum %d != BytesRecv %d", task, recv.Sum, cs.BytesRecv)
		}
		// AddSent is the only bump of Messages, and every AddSent site also
		// records into the sent family — counts must match too.
		if sent.Count != cs.Messages {
			t.Errorf("%s: edge_sent_bytes count %d != Messages %d", task, sent.Count, cs.Messages)
		}
	}
}

// checkStepBooks asserts the per-task step accounting balances: every
// category sums back to about Workers x Wall (the executor attributes every
// worker-loop moment to exactly one category, so only goroutine launch
// overhead escapes), and the step_ns histogram saw exactly the observed
// steps.
func checkStepBooks(t *testing.T, cl *Cluster, minSteps int64) {
	t.Helper()
	sums := cl.StepSummaries()
	hists := cl.HistSnapshots()
	if len(sums) == 0 {
		t.Fatal("no step summaries")
	}
	for task, s := range sums {
		if s.Steps < minSteps {
			t.Errorf("%s: %d steps observed, want >= %d", task, s.Steps, minSteps)
			continue
		}
		stepHist := hists[task].Hists[metrics.HistStepNs]
		if stepHist.Count != s.Steps {
			t.Errorf("%s: step_ns count %d != observed steps %d", task, stepHist.Count, s.Steps)
		}
		ww := time.Duration(s.Totals.Workers) * s.Totals.Wall
		acc := s.Totals.Accounted()
		if acc < 3*ww/4-20*time.Millisecond || acc > ww+ww/20+20*time.Millisecond {
			t.Errorf("%s: accounted %v vs workers x wall %v (compute %v comm %v poll %v idle %v): books do not balance",
				task, acc, ww, s.Totals.Compute, s.Totals.Comm, s.Totals.PollWait, s.Totals.Idle)
		}
	}
}

// TestMetricsTraceConsistency trains 10 steps on 3 tasks with tracing and
// histograms live and cross-checks every observability channel against the
// others: histogram byte totals vs Comm counters, trace span count vs
// operator-execution count, step-ops vs exec histogram counts, and the
// step-time books vs wall time.
func TestMetricsTraceConsistency(t *testing.T) {
	for _, kind := range []Kind{RDMA, GRPCRDMA, GRPCTCP} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const steps = 10
			rec := trace.NewRecorder(0)
			cl, feeds, fetches, _ := launchObsTraining(t, Config{
				Kind:        kind,
				ArenaBytes:  1 << 20,
				ExecWorkers: 1, // single worker: tightest possible books
				RingCfg:     transport.RingConfig{Slots: 16, SlotSize: 8 << 10},
				Trace:       rec,
			})
			for iter := 0; iter < steps; iter++ {
				if _, err := cl.Step(iter, feeds, fetches); err != nil {
					t.Fatal(err)
				}
			}
			if rec.Dropped() != 0 {
				t.Fatalf("trace dropped %d events; raise the cap for this test", rec.Dropped())
			}

			checkByteConsistency(t, cl)

			// Trace spans vs histogram executions: exec emits exactly one
			// "X" span and one exec_op_ns record per operator execution.
			spans := 0
			for _, e := range rec.Events() {
				if e.Phase == "X" {
					spans++
				}
			}
			var execs, ops int64
			for task, hs := range cl.HistSnapshots() {
				n := metrics.FamilyTotal(hs.Families[metrics.HistExecOpNs]).Count
				execs += n
				sum := cl.StepSummaries()[task]
				ops += sum.Totals.Ops
				if n != sum.Totals.Ops {
					t.Errorf("%s: exec_op_ns count %d != step ops %d", task, n, sum.Totals.Ops)
				}
			}
			if int64(spans) != execs {
				t.Errorf("trace has %d X spans, exec histograms saw %d executions", spans, execs)
			}
			if execs == 0 || ops == 0 {
				t.Fatal("no executions observed")
			}

			checkStepBooks(t, cl, steps)

			// Ring-over-RDMA must also populate the send-latency histogram
			// (GRPCTCP rides plain TCP sockets, not the ring transport).
			if kind == GRPCRDMA {
				var rings int64
				for _, hs := range cl.HistSnapshots() {
					rings += hs.Hists[metrics.HistRingSendNs].Count
				}
				if rings == 0 {
					t.Error("no ring_send_ns records on a ring mechanism")
				}
			}
		})
	}
}

// TestObsConsistencySurvivesRecovery crashes a worker mid-run and lets the
// recovery driver restart it. Metrics and histograms are carried onto the
// new incarnation, and both record paths stay welded to the same call
// sites — so the cross-channel equalities must hold after the rebuild just
// as they do on a clean run, and step summaries keep accumulating.
func TestObsConsistencySurvivesRecovery(t *testing.T) {
	const steps = 20
	cl, feeds, fetches, _ := launchPSRecovery(t, Config{
		Kind:        RDMA,
		ArenaBytes:  1 << 20,
		PollTimeout: 30 * time.Second,
		Transfer:    rdma.TransferOpts{Deadline: 8 * time.Second},
	})
	rec, err := cl.EnableRecovery(RecoveryConfig{
		Heartbeat:       HeartbeatConfig{Period: 5 * time.Millisecond},
		CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.New(chaos.Plan{
		Seed:   17,
		Script: []chaos.Event{{At: time.Millisecond, Crash: "worker1"}},
		Crash:  func(task string) { _ = cl.KillTask(task) },
	})
	inj.Install(cl.Fabric())
	t.Cleanup(inj.Stop)
	onStep := func(iter int, _ map[string]map[string]*tensor.Tensor) {
		if iter == 9 {
			inj.Start() // strike ~1ms into step 10
		}
	}
	if err := rec.Run(steps, feeds, fetches, onStep); err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if rs := rec.Metrics(); rs.Recoveries < 1 {
		t.Fatalf("no recovery happened (metrics %+v); the test exercised nothing", rs)
	}

	// The killed incarnation's last transfers may complete (with errors)
	// shortly after the run; poll briefly until the books go quiescent.
	deadline := time.Now().Add(2 * time.Second)
	for {
		consistent := true
		comm := cl.MetricsSnapshot()
		hists := cl.HistSnapshots()
		for task, cs := range comm {
			hs := hists[task]
			if metrics.FamilyTotal(hs.Families[metrics.HistEdgeSentBytes]).Sum != cs.BytesSent ||
				metrics.FamilyTotal(hs.Families[metrics.HistEdgeRecvBytes]).Sum != cs.BytesRecv {
				consistent = false
			}
		}
		if consistent || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkByteConsistency(t, cl)

	// Step summaries survived the rebuild and kept counting: every task
	// logged at least the 20 scripted steps (replays add more), and the
	// books still balance on the carried accumulators.
	checkStepBooks(t, cl, steps)
}
