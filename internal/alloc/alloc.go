// Package alloc provides the memory allocators the runtime places tensors
// with. The paper's graph analyzer preallocates one large RDMA-registered
// region per device and carves tensors out of it with an allocator (§3.4:
// registering each tensor buffer on demand is slow and bounded by hardware
// limits, so "preallocate a large enough memory buffer to register once").
//
// Two allocators are provided: Arena, a best-fit free-list allocator with
// coalescing over a caller-supplied byte block (typically a MemRegion's
// storage), and Heap, a plain Go-heap allocator used for tensors that never
// cross machines. Both hand out 8-byte-aligned buffers so tensor element
// views and RDMA flag words stay aligned.
package alloc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"unsafe"
)

// Common allocator errors.
var (
	ErrOutOfMemory = errors.New("alloc: out of memory")
	ErrBadFree     = errors.New("alloc: free of unknown or already-freed buffer")
	ErrBadSize     = errors.New("alloc: invalid size")
)

// Buffer is an allocation: a byte slice plus enough provenance to free it
// and to locate it inside a registered region for RDMA transfers.
type Buffer struct {
	// Data is the allocated storage, aligned to 8 bytes.
	Data []byte
	// Off is the byte offset of Data inside the arena's block; 0 for heap
	// buffers.
	Off int
	// Arena is the owning arena, or nil for heap buffers. Arena-backed
	// buffers are RDMA-accessible when the arena wraps a registered region.
	Arena *Arena
}

// InRegisteredMemory reports whether the buffer was carved from an arena
// (and is therefore remotely accessible when the arena wraps a MemRegion).
func (b *Buffer) InRegisteredMemory() bool { return b.Arena != nil }

// Free returns the buffer to its arena; heap buffers are garbage-collected
// and Free is a no-op for them.
func (b *Buffer) Free() error {
	if b.Arena == nil {
		return nil
	}
	return b.Arena.Free(b)
}

// Allocator is the interface the execution runtime allocates tensors with.
type Allocator interface {
	// Allocate returns a zeroed buffer of at least size bytes.
	Allocate(size int) (*Buffer, error)
}

// Heap allocates from the Go heap with 8-byte alignment.
type Heap struct{}

// Allocate implements Allocator.
func (Heap) Allocate(size int) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("alloc: heap allocate %d: %w", size, ErrBadSize)
	}
	return &Buffer{Data: alignedBytes(size)}, nil
}

// alignedBytes allocates an 8-byte-aligned slice by backing it with
// []uint64 (the Go allocator aligns word slices naturally). The single
// unsafe use in this package.
func alignedBytes(size int) []byte {
	words := (size + 7) / 8
	if words == 0 {
		return nil
	}
	backing := make([]uint64, words)
	return unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), words*8)[:size]
}

// Stats reports an arena's occupancy.
type Stats struct {
	Total      int // block size in bytes
	InUse      int // bytes currently allocated (after rounding)
	Peak       int // high-water mark of InUse
	Allocs     int // successful allocations
	Frees      int // successful frees
	FreeBlocks int // current free-list length (fragmentation signal)
}

// Arena is a best-fit free-list allocator with coalescing over one block of
// memory. It is safe for concurrent use.
type Arena struct {
	mu    sync.Mutex
	block []byte
	free  []span // sorted by offset, non-adjacent (always coalesced)
	live  map[int]int
	stats Stats
}

type span struct{ off, size int }

// NewArena builds an arena over the caller's block. The block is typically
// a registered MemRegion's storage; the arena never reallocates it.
func NewArena(block []byte) *Arena {
	a := &Arena{block: block, live: make(map[int]int)}
	if len(block) > 0 {
		a.free = []span{{0, len(block)}}
	}
	a.stats.Total = len(block)
	return a
}

// Allocate implements Allocator with a best-fit search.
func (a *Arena) Allocate(size int) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("alloc: arena allocate %d: %w", size, ErrBadSize)
	}
	rounded := (size + 7) / 8 * 8
	if rounded == 0 {
		rounded = 8
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	best := -1
	for i, s := range a.free {
		if s.size >= rounded && (best < 0 || s.size < a.free[best].size) {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("alloc: arena allocate %d of %d free: %w",
			rounded, a.freeBytesLocked(), ErrOutOfMemory)
	}
	s := a.free[best]
	off := s.off
	if s.size == rounded {
		a.free = append(a.free[:best], a.free[best+1:]...)
	} else {
		a.free[best] = span{off: s.off + rounded, size: s.size - rounded}
	}
	a.live[off] = rounded
	a.stats.InUse += rounded
	a.stats.Allocs++
	if a.stats.InUse > a.stats.Peak {
		a.stats.Peak = a.stats.InUse
	}
	data := a.block[off : off+size : off+rounded]
	for i := range data {
		data[i] = 0
	}
	return &Buffer{Data: data, Off: off, Arena: a}, nil
}

// Free returns a buffer's span to the free list, coalescing with neighbors.
func (a *Arena) Free(b *Buffer) error {
	if b == nil || b.Arena != a {
		return fmt.Errorf("alloc: free of foreign buffer: %w", ErrBadFree)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	size, ok := a.live[b.Off]
	if !ok {
		return fmt.Errorf("alloc: free at offset %d: %w", b.Off, ErrBadFree)
	}
	delete(a.live, b.Off)
	a.stats.InUse -= size
	a.stats.Frees++

	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off > b.Off })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{off: b.Off, size: size}
	// Coalesce with successor then predecessor.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.FreeBlocks = len(a.free)
	return st
}

// FreeBytes returns the bytes currently available.
func (a *Arena) FreeBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.freeBytesLocked()
}

func (a *Arena) freeBytesLocked() int {
	n := 0
	for _, s := range a.free {
		n += s.size
	}
	return n
}

// Block returns the underlying storage the arena manages.
func (a *Arena) Block() []byte { return a.block }
