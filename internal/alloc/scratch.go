package alloc

import (
	"math/bits"
	"sync"

	"repro/internal/metrics"
)

// ScratchPool recycles short-lived float32 workspaces (im2col patch
// matrices, per-sample gradient partials, chunk-local accumulators) so
// steady-state training iterations stop allocating them from the Go heap.
// Buffers are bucketed by power-of-two capacity; Get returns a buffer whose
// contents are NOT zeroed — kernels fully overwrite their workspaces.
//
// The pool is deliberately not a sync.Pool: buckets survive GC cycles so
// the steady state really is allocation-free, the capacity cap bounds
// memory, and the hit/miss counters feed internal/metrics.
type ScratchPool struct {
	mu      sync.Mutex
	buckets map[int][][]float32 // pow2 capacity -> free buffers
	perCap  int                 // max buffers retained per bucket

	hits, misses, discards int64
}

// ScratchStats reports a pool's activity.
type ScratchStats struct {
	Hits     int64 // Gets served from a bucket
	Misses   int64 // Gets that allocated
	Discards int64 // Puts dropped because the bucket was full
}

// NewScratchPool builds an empty pool retaining up to perBucket buffers per
// size class (default 8 when perBucket <= 0).
func NewScratchPool(perBucket int) *ScratchPool {
	if perBucket <= 0 {
		perBucket = 8
	}
	return &ScratchPool{buckets: make(map[int][][]float32), perCap: perBucket}
}

// Scratch is the process-wide pool the tensor kernels draw workspaces from.
var Scratch = NewScratchPool(0)

func pow2At(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// GetF32 returns a float32 buffer of length n with unspecified contents.
// Return it with PutF32 when done; keeping it is safe but defeats reuse.
func (p *ScratchPool) GetF32(n int) []float32 {
	if n <= 0 {
		return nil
	}
	c := pow2At(n)
	p.mu.Lock()
	free := p.buckets[c]
	if len(free) > 0 {
		buf := free[len(free)-1]
		p.buckets[c] = free[:len(free)-1]
		p.hits++
		p.mu.Unlock()
		metrics.AddScratchHit()
		return buf[:n]
	}
	p.misses++
	p.mu.Unlock()
	metrics.AddScratchMiss()
	return make([]float32, n, c)
}

// PutF32 returns a buffer obtained from GetF32 to its size bucket. Buffers
// whose capacity is not a power of two (not from this pool) are dropped.
func (p *ScratchPool) PutF32(buf []float32) {
	c := cap(buf)
	if c == 0 || c != pow2At(c) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buckets[c]) >= p.perCap {
		p.discards++
		metrics.AddScratchDiscard()
		return
	}
	p.buckets[c] = append(p.buckets[c], buf[:0])
}

// Stats returns a snapshot of the pool's counters.
func (p *ScratchPool) Stats() ScratchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ScratchStats{Hits: p.hits, Misses: p.misses, Discards: p.discards}
}

// Drop empties every bucket (tests and memory-pressure hooks).
func (p *ScratchPool) Drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buckets = make(map[int][][]float32)
}
