package alloc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"unsafe"
)

func TestHeapAllocate(t *testing.T) {
	var h Heap
	b, err := h.Allocate(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Data) != 100 {
		t.Errorf("len = %d", len(b.Data))
	}
	if uintptr(unsafe.Pointer(&b.Data[0]))%8 != 0 {
		t.Error("heap buffer misaligned")
	}
	if b.InRegisteredMemory() {
		t.Error("heap buffer claims registered memory")
	}
	if err := b.Free(); err != nil {
		t.Errorf("heap free: %v", err)
	}
	if _, err := h.Allocate(-1); !errors.Is(err, ErrBadSize) {
		t.Errorf("negative size: %v", err)
	}
	zero, err := h.Allocate(0)
	if err != nil || len(zero.Data) != 0 {
		t.Errorf("zero alloc: %v, %d", err, len(zero.Data))
	}
}

func TestArenaBasic(t *testing.T) {
	a := NewArena(make([]byte, 1024))
	b1, err := a.Allocate(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Data) != 100 || b1.Off != 0 {
		t.Errorf("b1: len %d off %d", len(b1.Data), b1.Off)
	}
	if !b1.InRegisteredMemory() {
		t.Error("arena buffer should report registered memory")
	}
	b2, err := a.Allocate(200)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Off != 104 { // 100 rounded to 104
		t.Errorf("b2.Off = %d, want 104", b2.Off)
	}
	st := a.Stats()
	if st.InUse != 104+200 || st.Allocs != 2 || st.Total != 1024 {
		t.Errorf("stats = %+v", st)
	}
	if err := a.Free(b1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b1); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: %v", err)
	}
	if a.Stats().InUse != 200 {
		t.Errorf("in use after free = %d", a.Stats().InUse)
	}
}

func TestArenaZeroesMemory(t *testing.T) {
	a := NewArena(make([]byte, 64))
	b, _ := a.Allocate(32)
	for i := range b.Data {
		b.Data[i] = 0xFF
	}
	if err := a.Free(b); err != nil {
		t.Fatal(err)
	}
	b2, _ := a.Allocate(32)
	for i, v := range b2.Data {
		if v != 0 {
			t.Fatalf("reused byte %d = %#x, want 0", i, v)
		}
	}
}

func TestArenaOutOfMemory(t *testing.T) {
	a := NewArena(make([]byte, 64))
	if _, err := a.Allocate(65); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversize: %v", err)
	}
	b, _ := a.Allocate(64)
	if _, err := a.Allocate(8); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("full arena: %v", err)
	}
	if err := a.Free(b); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Allocate(64); err != nil {
		t.Errorf("after free: %v", err)
	}
}

func TestArenaCoalescing(t *testing.T) {
	a := NewArena(make([]byte, 96))
	b1, _ := a.Allocate(32)
	b2, _ := a.Allocate(32)
	b3, _ := a.Allocate(32)
	// Free out of order; the final state must be one block of 96.
	for _, b := range []*Buffer{b2, b1, b3} {
		if err := a.Free(b); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.FreeBlocks != 1 {
		t.Errorf("free blocks = %d, want 1 (coalesced)", st.FreeBlocks)
	}
	if a.FreeBytes() != 96 {
		t.Errorf("free bytes = %d", a.FreeBytes())
	}
	if _, err := a.Allocate(96); err != nil {
		t.Errorf("full-size alloc after coalesce: %v", err)
	}
}

func TestArenaBestFit(t *testing.T) {
	a := NewArena(make([]byte, 256))
	b1, _ := a.Allocate(64)
	b2, _ := a.Allocate(32)
	b3, _ := a.Allocate(64)
	_ = b2
	if err := a.Free(b1); err != nil { // hole of 64 at 0
		t.Fatal(err)
	}
	if err := a.Free(b3); err == nil { // hole of 64 at 96... plus tail
		// b3's hole coalesces with the tail free span, so the 64-byte hole
		// at offset 0 is now the *best* fit for a 64-byte request.
		b4, err := a.Allocate(64)
		if err != nil {
			t.Fatal(err)
		}
		if b4.Off != 0 {
			t.Errorf("best-fit chose offset %d, want 0", b4.Off)
		}
	} else {
		t.Fatal(err)
	}
}

func TestArenaForeignFree(t *testing.T) {
	a := NewArena(make([]byte, 64))
	b := NewArena(make([]byte, 64))
	buf, _ := a.Allocate(8)
	if err := b.Free(buf); !errors.Is(err, ErrBadFree) {
		t.Errorf("foreign free: %v", err)
	}
	if err := a.Free(nil); !errors.Is(err, ErrBadFree) {
		t.Errorf("nil free: %v", err)
	}
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena(make([]byte, 1<<16))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var held []*Buffer
			for i := 0; i < 200; i++ {
				if rng.Intn(2) == 0 && len(held) > 0 {
					k := rng.Intn(len(held))
					if err := a.Free(held[k]); err != nil {
						t.Error(err)
						return
					}
					held = append(held[:k], held[k+1:]...)
				} else {
					b, err := a.Allocate(rng.Intn(512) + 1)
					if err != nil {
						continue // arena can be transiently full
					}
					held = append(held, b)
				}
			}
			for _, b := range held {
				if err := a.Free(b); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	st := a.Stats()
	if st.InUse != 0 {
		t.Errorf("leaked %d bytes", st.InUse)
	}
	if st.FreeBlocks != 1 {
		t.Errorf("fragmentation after full free: %d blocks", st.FreeBlocks)
	}
}

// Property: any sequence of allocations yields non-overlapping buffers, and
// freeing everything restores the full arena as a single span.
func TestArenaPropertyNoOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		size := 1 << 12
		a := NewArena(make([]byte, size))
		type allocation struct{ off, size int }
		var live []allocation
		var bufs []*Buffer
		for i := 0; i < 50; i++ {
			n := rng.Intn(300) + 1
			b, err := a.Allocate(n)
			if err != nil {
				break
			}
			rounded := (n + 7) / 8 * 8
			for _, l := range live {
				if b.Off < l.off+l.size && l.off < b.Off+rounded {
					t.Fatalf("overlap: [%d,+%d) with [%d,+%d)", b.Off, rounded, l.off, l.size)
				}
			}
			live = append(live, allocation{b.Off, rounded})
			bufs = append(bufs, b)
		}
		rng.Shuffle(len(bufs), func(i, j int) { bufs[i], bufs[j] = bufs[j], bufs[i] })
		for _, b := range bufs {
			if err := a.Free(b); err != nil {
				t.Fatal(err)
			}
		}
		if a.FreeBytes() != size || a.Stats().FreeBlocks != 1 {
			t.Fatalf("arena not fully restored: %d free, %d blocks",
				a.FreeBytes(), a.Stats().FreeBlocks)
		}
	}
}

func TestArenaEmptyBlock(t *testing.T) {
	a := NewArena(nil)
	if _, err := a.Allocate(1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("empty arena alloc: %v", err)
	}
	if a.FreeBytes() != 0 {
		t.Error("empty arena has free bytes")
	}
}

func BenchmarkArenaAllocFree(b *testing.B) {
	a := NewArena(make([]byte, 1<<20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := a.Allocate(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(buf); err != nil {
			b.Fatal(err)
		}
	}
}
