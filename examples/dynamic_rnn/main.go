// Dynamic shapes: an RNN-style pipeline whose batch size varies per
// mini-batch, exercising the §3.3 dynamic-allocation transfer
// (RdmaSendDyn/RdmaRecvDyn): the receiver preallocates only a fixed
// metadata block, learns each iteration's shape from it, allocates the
// tensor in registered memory, and pulls the payload with a one-sided read.
package main

import (
	"fmt"
	"log"

	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func main() {
	// worker0 embeds a variable-length token batch; ps0 consumes the
	// pooled activations. The cross-server tensor has a dynamic leading
	// dimension, so the analyzer selects the dynamic protocol.
	b := graph.NewBuilder()
	b.OnTask("ps0")
	w := b.Variable("w_embed", graph.Static(tensor.Float32, 16, 8))
	b.OnTask("worker0")
	x := b.Placeholder("tokens", graph.Dyn(tensor.Float32, -1, 16))
	h := b.Tanh("h", b.MatMul("mm", x, w))
	b.OnTask("ps0")
	pooled := b.ReduceMax("pooled", h)
	_ = pooled

	cl, err := distributed.Launch(b, distributed.Config{Kind: distributed.RDMA, ArenaBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.InitVariable("w_embed", func(t *tensor.Tensor) { t.Fill(0.25) }); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("edges: %d static (the variable), %d dynamic (the activations)\n",
		len(cl.Result().StaticEdges()), len(cl.Result().DynamicEdges()))
	for _, e := range cl.Result().DynamicEdges() {
		fmt.Printf("dynamic edge %s: rank fixed at %d, extents vary per iteration\n",
			e.Key, e.Sig.Shape.Rank())
	}

	// Sequence lengths vary per mini-batch, as in the paper's NLP
	// motivation for the dynamic mechanism.
	for iter, batchLen := range []int{3, 9, 1, 6, 12} {
		xs := tensor.New(tensor.Float32, batchLen, 16)
		xs.Fill(float32(iter + 1))
		out, err := cl.Step(iter,
			map[string]map[string]*tensor.Tensor{"worker0": {"tokens": xs}},
			map[string][]string{"ps0": {"pooled"}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iter %d: batch %2d rows -> pooled activation %.4f\n",
			iter, batchLen, out["ps0"]["pooled"].Float32s()[0])
	}

	m := cl.Server("worker0").Metrics.Snapshot()
	fmt.Printf("worker0: %d dynamic transfers, %d zero-copy, %d copies (tracing iteration only)\n",
		m.DynTransfers, m.ZeroCopyOps, m.MemCopies)
}
