// Ring all-reduce: the same data-parallel MLP trained under all three
// gradient-exchange topologies — parameter server, ring all-reduce, and
// tree all-reduce — from one seed. Every topology folds gradients in the
// identical left-to-right rank order, so the per-step losses (and the final
// variables) are bit-identical across topologies; what changes is the wire
// pattern, visible in the per-task communication counters: the PS incast
// concentrates 2·N·G bytes on the server while the ring spreads a constant
// 2·G across every link.
package main

import (
	"fmt"
	"log"

	"repro/internal/distributed"
)

func main() {
	var ref []float32
	for _, topo := range []string{"ps", "ring", "tree"} {
		losses, err := trainOnce(topo)
		if err != nil {
			log.Fatalf("%s: %v", topo, err)
		}
		if ref == nil {
			ref = losses
			continue
		}
		for i := range losses {
			if losses[i] != ref[i] {
				log.Fatalf("%s: loss[%d] = %v, ps got %v — topologies must be bit-identical", topo, i, losses[i], ref[i])
			}
		}
	}
	fmt.Println("\nall three topologies trained to bit-identical losses")
}

func trainOnce(topo string) ([]float32, error) {
	job, err := distributed.BuildMLPTraining(distributed.MLPConfig{
		Workers: 4, PSCount: 1, Batch: 8,
		In: 16, Hidden: 32, Classes: 4, LR: 0.3,
		Topology: topo, BucketBytes: 1 << 10,
	}, 11)
	if err != nil {
		return nil, err
	}
	cl, err := distributed.Launch(job.Builder, distributed.Config{
		Kind:       distributed.RDMA,
		ArenaBytes: 8 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := job.InitAll(cl); err != nil {
		return nil, err
	}
	feeds := job.SyntheticDataset(3)
	fetches := make(map[string][]string)
	for k, task := range job.WorkerTasks {
		fetches[task] = []string{job.LossName(k)}
	}
	const iters = 25
	var losses []float32
	for iter := 0; iter < iters; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			return nil, err
		}
		var sum float32
		for k, task := range job.WorkerTasks {
			sum += out[task][job.LossName(k)].Float32s()[0]
		}
		losses = append(losses, sum/float32(len(job.WorkerTasks)))
	}
	fmt.Printf("%-5s (%d buckets): loss %.4f -> %.4f\n", topo, len(job.Buckets), losses[0], losses[iters-1])
	var sent, msgs int64
	for _, m := range cl.MetricsSnapshot() {
		sent += m.BytesSent
		msgs += m.Messages
	}
	fmt.Printf("      wire: %d messages, %d bytes total\n", msgs, sent)
	return losses, nil
}
