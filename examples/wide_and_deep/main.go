// Wide-and-deep: §3.3 motivates the dynamic-allocation transfer with
// recommender models where "each training sample contain[s] a different set
// of features". Here the wide part's active-feature matrix has a different
// row count every mini-batch, so the tensor crossing to the parameter
// server (and its gradient crossing back) runs over RdmaSendDyn/RecvDyn —
// metadata flag, one-sided read, ack-gated reuse — while the dense deep
// part's fixed-shape weights use the static zero-copy protocol.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func main() {
	const features, deepIn, hidden, classes = 24, 8, 12, 2

	b := graph.NewBuilder()
	// Deep tower on the worker: dense features through a hidden layer.
	b.OnTask("worker0")
	deepX := b.Placeholder("deep_x", graph.Dyn(tensor.Float32, -1, deepIn))
	w1 := b.Variable("deep_w1", graph.Static(tensor.Float32, deepIn, hidden))
	deepH := b.Tanh("deep_h", b.MatMul("deep_mm", deepX, w1))
	// Wide part: multi-hot feature rows (variable batch) embedded linearly.
	wideX := b.Placeholder("wide_x", graph.Dyn(tensor.Float32, -1, features))
	wWide := b.Variable("wide_w", graph.Static(tensor.Float32, features, hidden))
	wideH := b.MatMul("wide_mm", wideX, wWide)
	combined := b.Add("combined", deepH, wideH)

	// The head lives on the PS: the combined activations cross over the
	// dynamic protocol because their batch dimension varies.
	b.OnTask("ps0")
	wOut := b.Variable("w_out", graph.Static(tensor.Float32, hidden, classes))
	labels := b.Placeholder("labels", graph.Dyn(tensor.Int32, -1))
	loss := b.SoftmaxXent("loss", b.MatMul("head", combined, wOut), labels)

	grads, err := graph.Gradients(b, loss,
		[]*graph.Node{w1, wWide, wOut})
	if err != nil {
		log.Fatal(err)
	}
	b.OnTask("worker0")
	b.ApplySGD("apply_w1", w1, grads[w1], 0.3)
	b.ApplySGD("apply_wide", wWide, grads[wWide], 0.3)
	b.OnTask("ps0")
	b.ApplySGD("apply_out", wOut, grads[wOut], 0.3)

	cl, err := distributed.Launch(b, distributed.Config{
		Kind: distributed.RDMA, ArenaBytes: 4 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Print(cl.Result().Summary())

	rng := rand.New(rand.NewSource(13))
	for _, v := range []string{"deep_w1", "wide_w", "w_out"} {
		if err := cl.InitVariable(v, func(t *tensor.Tensor) { tensor.GlorotInit(t, rng) }); err != nil {
			log.Fatal(err)
		}
	}

	// The label depends on whether a sample's active wide features overlap
	// a "positive" set — learnable, and per-sample feature counts vary.
	positive := map[int]bool{}
	for len(positive) < features/3 {
		positive[rng.Intn(features)] = true
	}
	dataRng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 40; iter++ {
		batch := 3 + dataRng.Intn(10)
		wide := tensor.New(tensor.Float32, batch, features)
		deep := tensor.New(tensor.Float32, batch, deepIn)
		tensor.RandomUniform(deep, dataRng, 0.5)
		ls := tensor.New(tensor.Int32, batch)
		for i := 0; i < batch; i++ {
			active := 1 + dataRng.Intn(6) // different feature set sizes
			hit := 0
			for f := 0; f < active; f++ {
				k := dataRng.Intn(features)
				wide.Float32s()[i*features+k] = 1
				if positive[k] {
					hit++
				}
			}
			if hit > 0 {
				ls.Int32s()[i] = 1
			}
		}
		out, err := cl.Step(iter,
			map[string]map[string]*tensor.Tensor{
				"worker0": {"wide_x": wide, "deep_x": deep},
				"ps0":     {"labels": ls},
			},
			map[string][]string{"ps0": {"loss"}})
		if err != nil {
			log.Fatal(err)
		}
		if iter%8 == 0 || iter == 39 {
			fmt.Printf("iter %2d  batch %2d  loss %.4f\n", iter, batch,
				out["ps0"]["loss"].Float32s()[0])
		}
	}
	m := cl.Server("worker0").Metrics.Snapshot()
	fmt.Printf("worker0: %d dynamic transfers, %d zero-copy sends\n",
		m.DynTransfers, m.ZeroCopyOps)
}
