// GPUDirect: the §3.5 transfer pattern. The tensor payload lives in
// (emulated) GPU device memory; the metadata block and its flag stay in
// host memory so the CPU does the polling; the payload moves directly
// between device memories with a one-sided RDMA read. Run side by side
// with the staged path (GPUDirect off) to see the two extra copies
// disappear from the counters — Table 3's effect, functionally.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/alloc"
	"repro/internal/gpudirect"
	"repro/internal/metrics"
	"repro/internal/rdma"
)

func main() {
	for _, gdr := range []bool{false, true} {
		if err := run(gdr); err != nil {
			log.Fatal(err)
		}
	}
}

func run(gdr bool) error {
	fabric := rdma.NewFabric()
	a, err := rdma.CreateDevice(fabric, rdma.Config{Endpoint: "hostA:1"})
	if err != nil {
		return err
	}
	defer a.Close()
	b, err := rdma.CreateDevice(fabric, rdma.Config{Endpoint: "hostB:1"})
	if err != nil {
		return err
	}
	defer b.Close()

	sm, rm := &metrics.Comm{}, &metrics.Comm{}
	senderGPU, err := gpudirect.NewMemory(a, 1<<20, gdr, sm)
	if err != nil {
		return err
	}
	receiverGPU, err := gpudirect.NewMemory(b, 1<<20, gdr, rm)
	if err != nil {
		return err
	}

	chBA, err := b.GetChannel("hostA:1", 0)
	if err != nil {
		return err
	}
	recv, err := gpudirect.NewReceiver(receiverGPU, chBA)
	if err != nil {
		return err
	}
	chAB, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		return err
	}
	send, err := gpudirect.NewSender(senderGPU, chAB, recv.Desc())
	if err != nil {
		return err
	}

	// One 256 KB "activation tensor" per iteration, three iterations.
	for iter := 0; iter < 3; iter++ {
		for !send.PollReusable() {
			time.Sleep(10 * time.Microsecond)
		}
		buf, err := senderGPU.Alloc(256 << 10)
		if err != nil {
			return err
		}
		for i := range buf.Data {
			buf.Data[i] = byte(iter + 1)
		}
		done := make(chan error, 1)
		if err := send.Send(buf, []uint64{256 << 10}, func(err error) { done <- err }); err != nil {
			return err
		}
		if err := <-done; err != nil {
			return err
		}
		var meta rdma.DynMeta
		for {
			m, ok := recv.Poll() // CPU-side polling of host-memory metadata
			if ok {
				meta = m
				break
			}
			time.Sleep(10 * time.Microsecond)
		}
		got := make(chan *alloc.Buffer, 1)
		errc := make(chan error, 1)
		if err := recv.Fetch(meta, send.ScratchDesc(), func(b *alloc.Buffer, err error) {
			if err != nil {
				errc <- err
				return
			}
			got <- b
		}); err != nil {
			return err
		}
		select {
		case err := <-errc:
			return err
		case out := <-got:
			if out.Data[0] != byte(iter+1) {
				return fmt.Errorf("iteration %d: payload corrupted", iter)
			}
			if err := receiverGPU.Free(out); err != nil {
				return err
			}
		}
		if err := senderGPU.Free(buf); err != nil {
			return err
		}
	}
	mode := "staged through host"
	if gdr {
		mode = "GPUDirect"
	}
	fmt.Printf("%-20s 3 iterations: sender copies=%d, receiver copies=%d, zero-copy sends=%d\n",
		mode, sm.Snapshot().MemCopies, rm.Snapshot().MemCopies, sm.Snapshot().ZeroCopyOps)
	return nil
}
