// Model parallelism (Figure 2's second placement): the network's layers
// live on different servers, so per-iteration communication carries
// activations forward across the cut and their gradients backward — both
// over the zero-copy static protocol, since activation shapes are fixed.
// The partitioned graph is dumped as DOT so the cut is visible.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func main() {
	const batch, in, hidden, classes = 8, 16, 24, 4

	b := graph.NewBuilder()
	// Layer 1 on serverA.
	b.OnTask("serverA")
	x := b.Placeholder("x", graph.Static(tensor.Float32, batch, in))
	w1 := b.Variable("w1", graph.Static(tensor.Float32, in, hidden))
	h := b.Tanh("h", b.MatMul("mm1", x, w1))
	// Layer 2 and the loss on serverB.
	b.OnTask("serverB")
	w2 := b.Variable("w2", graph.Static(tensor.Float32, hidden, classes))
	labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
	loss := b.SoftmaxXent("loss", b.MatMul("mm2", h, w2), labels)

	grads, err := graph.Gradients(b, loss, []*graph.Node{w1, w2})
	if err != nil {
		log.Fatal(err)
	}
	b.OnTask("serverA")
	b.ApplySGD("apply_w1", w1, grads[w1], 0.4)
	b.OnTask("serverB")
	b.ApplySGD("apply_w2", w2, grads[w2], 0.4)

	cl, err := distributed.Launch(b, distributed.Config{
		Kind:       distributed.RDMA,
		ArenaBytes: 4 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	fmt.Println("cross-server edges (activations forward, gradients back):")
	for _, e := range cl.Result().Edges {
		fmt.Printf("  %-32s %s -> %s  (%d bytes)\n", e.Key, e.SrcTask, e.DstTask, e.Sig.ByteSize())
	}
	if f, err := os.Create("model_parallel.dot"); err == nil {
		if err := cl.Result().Graph.WriteDot(f, "model-parallel"); err == nil {
			fmt.Println("wrote model_parallel.dot (render with: dot -Tsvg)")
		}
		f.Close()
	}

	rng := rand.New(rand.NewSource(5))
	if err := cl.InitVariable("w1", func(t *tensor.Tensor) { tensor.GlorotInit(t, rng) }); err != nil {
		log.Fatal(err)
	}
	if err := cl.InitVariable("w2", func(t *tensor.Tensor) { tensor.GlorotInit(t, rng) }); err != nil {
		log.Fatal(err)
	}
	xs := tensor.New(tensor.Float32, batch, in)
	tensor.RandomUniform(xs, rng, 1)
	ls := tensor.New(tensor.Int32, batch)
	tensor.RandomLabels(ls, rng, classes)
	feeds := map[string]map[string]*tensor.Tensor{
		"serverA": {"x": xs},
		"serverB": {"labels": ls},
	}
	for iter := 0; iter < 30; iter++ {
		out, err := cl.Step(iter, feeds, map[string][]string{"serverB": {"loss"}})
		if err != nil {
			log.Fatal(err)
		}
		if iter%5 == 0 || iter == 29 {
			fmt.Printf("iter %2d  loss %.4f\n", iter, out["serverB"]["loss"].Float32s()[0])
		}
	}
}
