// Serving: the zero-copy weight-publication plane. A trainer snapshots its
// variable store every few steps and streams the version into each
// replica's spare bank with one-sided striped writes — payload first, the
// 8-byte version word last, so a replica's poll loop can only ever observe
// a complete version. Replicas swap banks atomically (readers pin the old
// bank until drained; no torn weights, no copies on the serving path) and
// a batching frontend with bounded-queue admission control routes queries
// around replicas that are mid-swap or dead. The staleness invariant —
// no served answer more than one version behind the trainer — holds
// throughout, including across a replica crash and readmission.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/distributed"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	const (
		replicas = 2
		n        = 8 // affine model width: out = x·w + b
		batch    = 4
	)

	// The trainer's variable store. The model is deliberately transparent:
	// every weight holds the version number, so a served row must equal
	// (n+1)·version — any mixture of versions would be visible instantly.
	vars := exec.NewVarStore()
	if err := vars.Create("w", tensor.New(tensor.Float32, n, n)); err != nil {
		log.Fatal(err)
	}
	if err := vars.Create("b", tensor.New(tensor.Float32, n)); err != nil {
		log.Fatal(err)
	}
	setVersion := func(v float32) {
		for _, name := range []string{"w", "b"} {
			t, _ := vars.VarTensor(name)
			t.Fill(v)
		}
	}

	spec := serve.ForwardSpec{
		Feed: "x", Fetch: "out",
		Batch: batch, Inputs: n, Classes: n,
		Build: func(b *graph.Builder) error {
			x := b.Placeholder("x", graph.Static(tensor.Float32, batch, n))
			w := b.Variable("w", graph.Static(tensor.Float32, n, n))
			bias := b.Variable("b", graph.Static(tensor.Float32, n))
			b.BiasAdd("out", b.MatMul("mm", x, w), bias)
			return b.Err()
		},
	}

	met := &metrics.Serve{}
	fleet, err := distributed.NewServingFleet(distributed.ServingConfig{
		Replicas: replicas, Spec: spec, Vars: vars,
		Heartbeat: distributed.HeartbeatConfig{
			Period: 2 * time.Millisecond, Timeout: 50 * time.Millisecond,
		},
		Metrics: met,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	x := make([]float32, n)
	for i := range x {
		x[i] = 1
	}

	// Publish three versions; after each, every served answer must carry
	// exactly that version's weights (or the one just behind it).
	for v := 1; v <= 3; v++ {
		setVersion(float32(v))
		if _, err := fleet.Publish(); err != nil {
			log.Fatal(err)
		}
		res := awaitVersion(fleet, x, uint64(v))
		fmt.Printf("v%d: out[0]=%v (want %v), staleness=%d\n",
			v, res.Probs[0], float32(n+1)*float32(v), res.Staleness)
	}

	// Crash one replica; the lease detector evicts it, the survivor keeps
	// serving, and the trainer keeps publishing.
	if err := fleet.KillReplica("replica0"); err != nil {
		log.Fatal(err)
	}
	fleet.AwaitDead("replica0", 5*time.Second)
	for fleet.Table().Alive("replica0") {
		time.Sleep(time.Millisecond)
	}
	setVersion(4)
	if _, err := fleet.Publish(); err != nil {
		log.Fatal(err)
	}
	res := awaitVersion(fleet, x, 4)
	fmt.Printf("v4 with replica0 dead: out[0]=%v, served by the survivor\n", res.Probs[0])

	// Readmit it: fresh banks, catch-up republish of the current version.
	if err := fleet.RestartReplica("replica0"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica0 readmitted at v%d\n", fleet.Version())

	s := met.Snapshot()
	fmt.Printf("publishes=%d republishes=%d swaps=%d served=%d staleness-max=%d\n",
		s.WeightPublishes, s.Republishes, s.BankSwaps, s.QueriesServed, s.StalenessVersionsMax)
}

func awaitVersion(fleet *distributed.ServingFleet, x []float32, v uint64) serve.Result {
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := fleet.Query(x)
		if err == nil && res.Version == v {
			return res
		}
		if time.Now().After(deadline) {
			log.Fatalf("fleet never served v%d (last err: %v)", v, err)
		}
		time.Sleep(time.Millisecond)
	}
}
