// Quickstart: the paper's Table-1 device interface in ~60 lines.
//
// Two emulated servers exchange a tensor with the §3.2 zero-copy protocol:
// the receiver preallocates a slot in registered memory and distributes its
// address over the vanilla RPC; the sender writes payload + flag with one
// one-sided RDMA write; the receiver polls the flag and reads the tensor in
// place.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/rdma"
	"repro/internal/tensor"
)

func main() {
	fabric := rdma.NewFabric()

	// One device per server, the paper's defaults: 4 CQs, 4 QPs per peer.
	sender, err := rdma.CreateDevice(fabric, rdma.Config{Endpoint: "serverA:7777"})
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()
	receiver, err := rdma.CreateDevice(fabric, rdma.Config{Endpoint: "serverB:7777"})
	if err != nil {
		log.Fatal(err)
	}
	defer receiver.Close()

	// Receiver: preallocate the tensor slot in registered memory and serve
	// its address over the vanilla RPC (the §3.1 address distribution).
	const payloadBytes = 1024 * 4 // a [1024]float32 tensor
	recvMR, err := receiver.AllocateMemRegion(rdma.StaticSlotSize(payloadBytes))
	if err != nil {
		log.Fatal(err)
	}
	slot, err := rdma.NewStaticReceiver(recvMR, 0, payloadBytes)
	if err != nil {
		log.Fatal(err)
	}
	receiver.RegisterRPC("tensor.addr", func(from string, req []byte) ([]byte, error) {
		return slot.Desc().Marshal(), nil
	})

	// Sender: fetch the address, stage the tensor directly in registered
	// memory, send with a single one-sided write.
	ch, err := sender.GetChannel("serverB:7777", 0)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := ch.Call("tensor.addr", nil, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	desc, err := rdma.UnmarshalStaticSlotDesc(resp)
	if err != nil {
		log.Fatal(err)
	}
	sendMR, err := sender.AllocateMemRegion(rdma.StaticSlotSize(payloadBytes))
	if err != nil {
		log.Fatal(err)
	}
	out, err := rdma.NewStaticSender(ch, sendMR, 0, desc)
	if err != nil {
		log.Fatal(err)
	}

	// The tensor's storage IS the staging buffer: writing it here is the
	// zero-copy property the graph analyzer arranges automatically.
	t, err := tensor.FromBytes(tensor.Float32, tensor.Shape{1024}, out.Buffer())
	if err != nil {
		log.Fatal(err)
	}
	for i := range t.Float32s() {
		t.Float32s()[i] = float32(i) * 0.5
	}
	done := make(chan error, 1)
	if err := out.Send(func(err error) { done <- err }); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	// Receiver: poll the tail flag, then read the tensor in place.
	for !slot.Poll() {
		time.Sleep(10 * time.Microsecond)
	}
	got, err := tensor.FromBytes(tensor.Float32, tensor.Shape{1024}, slot.Payload())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("received %v elements, max = %v (expected %v)\n",
		got.NumElements(), tensor.ReduceMax(got), 1023*0.5)
	slot.Consume()
}
