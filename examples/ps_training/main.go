// PS training: data-parallel training of an MLP classifier on a 4-worker /
// 2-PS in-process cluster, run under all four communication mechanisms.
// All mechanisms perform the identical synchronous SGD, so the losses
// match; the communication counters show where the mechanisms differ —
// the zero-copy device mechanism stops copying after the tracing iteration
// while the baselines copy and serialize every tensor forever.
package main

import (
	"fmt"
	"log"

	"repro/internal/distributed"
	"repro/internal/transport"
)

func main() {
	kinds := []distributed.Kind{
		distributed.GRPCTCP, distributed.GRPCRDMA,
		distributed.RDMACopy, distributed.RDMA,
	}
	for _, kind := range kinds {
		if err := trainOnce(kind); err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
	}
}

func trainOnce(kind distributed.Kind) error {
	job, err := distributed.BuildMLPTraining(distributed.MLPConfig{
		Workers: 4, PSCount: 2, Batch: 8,
		In: 16, Hidden: 32, Classes: 4, LR: 0.3,
	}, 11)
	if err != nil {
		return err
	}
	cl, err := distributed.Launch(job.Builder, distributed.Config{
		Kind:       kind,
		ArenaBytes: 8 << 20,
		RingCfg:    transport.RingConfig{Slots: 16, SlotSize: 32 << 10},
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := job.InitAll(cl); err != nil {
		return err
	}
	feeds := job.SyntheticDataset(3)
	fetches := make(map[string][]string)
	for k, task := range job.WorkerTasks {
		fetches[task] = []string{job.LossName(k)}
	}
	var first, last float32
	const iters = 25
	for iter := 0; iter < iters; iter++ {
		out, err := cl.Step(iter, feeds, fetches)
		if err != nil {
			return err
		}
		var sum float32
		for k, task := range job.WorkerTasks {
			sum += out[task][job.LossName(k)].Float32s()[0]
		}
		mean := sum / float32(len(job.WorkerTasks))
		if iter == 0 {
			first = mean
		}
		last = mean
	}
	var copies, zero, serialized int64
	for _, m := range cl.MetricsSnapshot() {
		copies += m.MemCopies
		zero += m.ZeroCopyOps
		serialized += m.SerializedBytes
	}
	fmt.Printf("%-11s loss %.4f -> %.4f   memcopies=%5d zerocopy=%5d serialized=%9dB\n",
		kind, first, last, copies, zero, serialized)
	return nil
}
