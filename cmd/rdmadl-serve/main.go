// Command rdmadl-serve runs the zero-copy inference serving plane on an
// in-process fleet: a trainer-side weight publisher streaming versions into
// each replica's double-buffered banks over one-sided writes, replicas
// atomically swapping to complete versions, and a batching frontend with
// bounded-queue admission control serving a synthetic query load.
//
// Usage:
//
//	rdmadl-serve [-replicas N] [-versions N] [-publish-every DUR]
//	             [-clients N] [-duration DUR] [-batch N] [-max-queue N]
//	             [-crash-demo] [-model] [-obs-addr HOST:PORT]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distributed"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	replicas := flag.Int("replicas", 3, "inference replica count")
	versions := flag.Int("versions", 20, "weight versions to publish")
	publishEvery := flag.Duration("publish-every", 20*time.Millisecond, "publication cadence (the trainer's snapshot interval)")
	clients := flag.Int("clients", 8, "concurrent closed-loop query clients")
	batch := flag.Int("batch", 16, "inference batch geometry (queries padded per dispatch)")
	in := flag.Int("in", 32, "model input width")
	hidden := flag.Int("hidden", 64, "model hidden width")
	classes := flag.Int("classes", 8, "model output classes")
	maxQueue := flag.Int("max-queue", 256, "admission queue bound; beyond it queries shed with ErrOverloaded")
	batchWait := flag.Duration("batch-wait", 200*time.Microsecond, "partial-batch linger before dispatch")
	lanes := flag.Int("lanes", 2, "QP lanes striping each bank publication")
	crashDemo := flag.Bool("crash-demo", false, "kill one replica mid-run, let the lease detector evict it, then restart and readmit it")
	model := flag.Bool("model", false, "print the netsim million-user staleness-vs-throughput sweep and exit")
	obsAddr := flag.String("obs-addr", "", "serve live observability HTTP on this address (adds serving counters to /metrics); empty = off")
	flag.Parse()

	if *model {
		printModel(*replicas)
		return
	}
	if *replicas < 1 || *versions < 1 || *clients < 1 {
		fmt.Fprintln(os.Stderr, "rdmadl-serve: -replicas, -versions, -clients must be ≥ 1")
		os.Exit(2)
	}
	if err := run(*replicas, *versions, *publishEvery, *clients, *batch, *in, *hidden, *classes,
		*maxQueue, *batchWait, *lanes, *crashDemo, *obsAddr); err != nil {
		fmt.Fprintf(os.Stderr, "rdmadl-serve: %v\n", err)
		os.Exit(1)
	}
}

// printModel emits the closed-form serving model at the million-user load
// point, the same curve scripts/bench.sh records to BENCH_serve.json.
func printModel(replicas int) {
	cost := netsim.DefaultServeCost(replicas, 256<<20)
	load := netsim.ServeLoad{Users: 1_000_000, ThinkTimeS: 10}
	fmt.Printf("netsim serving model: %d replicas, 256 MB payload, %d users (%.0f QPS offered)\n",
		replicas, load.Users, load.OfferedQPS())
	for _, r := range cost.StalenessSweep(load, []float64{5000, 1000, 500, 200, 100, 50}) {
		fmt.Printf("  %s\n", r)
	}
}

// trainerVars builds the MLP variable store the publisher snapshots.
// Weights are deterministic functions of their indices; each publication
// perturbs them so versions are distinguishable at the replicas.
func trainerVars(in, hidden, classes int) (*exec.VarStore, error) {
	vs := exec.NewVarStore()
	shapes := map[string][]int{
		"w1": {in, hidden}, "b1": {hidden},
		"w2": {hidden, classes}, "b2": {classes},
	}
	for name, dims := range shapes {
		t := tensor.New(tensor.Float32, dims...)
		vals := t.Float32s()
		for i := range vals {
			vals[i] = float32(math.Sin(float64(i)+1) * 0.1)
		}
		if err := vs.Create(name, t); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// perturb nudges every weight — the stand-in for a training step between
// publications.
func perturb(vs *exec.VarStore, step int) {
	for _, name := range []string{"w1", "b1", "w2", "b2"} {
		t, err := vs.VarTensor(name)
		if err != nil {
			continue
		}
		vals := t.Float32s()
		for i := range vals {
			vals[i] += 1e-4 * float32(step%7+1)
		}
	}
}

func run(replicas, versions int, publishEvery time.Duration, clients, batch, in, hidden, classes,
	maxQueue int, batchWait time.Duration, lanes int, crashDemo bool, obsAddr string) error {
	vars, err := trainerVars(in, hidden, classes)
	if err != nil {
		return err
	}
	met := &metrics.Serve{}
	rec := &metrics.Recovery{}
	hists := &metrics.Set{}
	fleet, err := distributed.NewServingFleet(distributed.ServingConfig{
		Replicas: replicas,
		Spec:     serve.MLPForward(batch, in, hidden, classes),
		Vars:     vars,
		Lanes:    lanes,
		MaxQueue: maxQueue, BatchWait: batchWait,
		Heartbeat: distributed.HeartbeatConfig{
			Period: 2 * time.Millisecond, Timeout: 50 * time.Millisecond,
		},
		Metrics: met, Recovery: rec, Hists: hists,
	})
	if err != nil {
		return err
	}
	defer fleet.Close()

	if obsAddr != "" {
		obsSrv := obs.NewServer(obs.Options{
			Serve: func() map[string]metrics.ServeSnapshot {
				return map[string]metrics.ServeSnapshot{"serving": met.Snapshot()}
			},
		})
		addr, err := obsSrv.Start(obsAddr)
		if err != nil {
			return err
		}
		defer obsSrv.Close()
		fmt.Printf("obs: serving http://%s/metrics\n", addr)
	}

	fmt.Printf("fleet: %d replicas, batch=%d, model %d→%d→%d, publish every %v, %d clients\n",
		replicas, batch, in, hidden, classes, publishEvery, clients)

	// First version before queries flow: replicas boot warming and become
	// routable only once a complete version landed.
	if _, err := fleet.Publish(); err != nil {
		return err
	}

	var stop atomic.Bool
	var served, shed, failed atomic.Int64
	var wg sync.WaitGroup
	x := make([]float32, in)
	for i := range x {
		x[i] = 1
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_, err := fleet.Query(x)
				switch {
				case err == nil:
					served.Add(1)
				case err == serve.ErrOverloaded:
					shed.Add(1)
				default:
					failed.Add(1)
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	crashAt := versions / 2
	for v := 2; v <= versions; v++ {
		time.Sleep(publishEvery)
		perturb(vars, v)
		if _, err := fleet.Publish(); err != nil {
			return err
		}
		if crashDemo && v == crashAt {
			task := "replica0"
			fmt.Printf("crash-demo: killing %s at v%d\n", task, v)
			if err := fleet.KillReplica(task); err != nil {
				return err
			}
			if !fleet.AwaitDead(task, 5*time.Second) {
				return fmt.Errorf("lease never expired for %s", task)
			}
			fmt.Printf("crash-demo: lease expired, %s evicted from routing and publication\n", task)
		}
		if crashDemo && v == crashAt+2 {
			task := "replica0"
			if err := fleet.RestartReplica(task); err != nil {
				return err
			}
			fmt.Printf("crash-demo: %s readmitted at v%d via catch-up republish\n", task, fleet.Version())
		}
	}
	// Let in-flight queries observe the final version, then stop.
	time.Sleep(10 * publishEvery)
	stop.Store(true)
	wg.Wait()

	s := met.Snapshot()
	fmt.Printf("\npublished %d versions (%d bytes), %d republishes, %d bank swaps\n",
		s.WeightPublishes, s.PublishedBytes, s.Republishes, s.BankSwaps)
	fmt.Printf("queries: served=%d shed=%d failed=%d batches=%d routing-rejects=%d\n",
		served.Load(), shed.Load(), failed.Load(), s.ServeBatches, s.RoutingRejects)
	fmt.Printf("staleness: max %d version(s) behind the trainer (bound: 1)\n", s.StalenessVersionsMax)
	if crashDemo {
		rs := rec.Snapshot()
		fmt.Printf("recovery: lease expiries=%d rejoins=%d\n", rs.LeaseExpiries, rs.Rejoins)
	}
	hs := hists.Snapshot()
	if bh, ok := hs.Hists[metrics.HistServeBatchNs]; ok && bh.Count > 0 {
		fmt.Printf("batch latency: mean %.0fns p99<=%dns over %d batches\n",
			bh.Mean(), bh.Quantile(0.99), bh.Count)
	}
	if s.StalenessVersionsMax > 1 {
		return fmt.Errorf("staleness bound violated: %d versions", s.StalenessVersionsMax)
	}
	return nil
}
