// Command rdmadl-train runs data-parallel MLP training on an in-process
// parameter-server cluster under a chosen communication mechanism, printing
// per-iteration loss and the communication counters that distinguish the
// mechanisms (bytes moved, memcopies, serialization).
//
// Usage:
//
//	rdmadl-train [-mechanism rdma|rdma-copy|grpc-rdma|grpc-tcp]
//	             [-topology ps|sharded-ps|ring|tree] [-bucket-bytes N]
//	             [-ps-shards K] [-agg-group N]
//	             [-workers N] [-ps N] [-iters N] [-batch N]
//	             [-stripes N] [-coalesce BYTES]
//	             [-qp-slots N] [-lossy-fabric] [-chunk-drop-rate F]
//	             [-heartbeat DUR] [-checkpoint-every N]
//	             [-obs-addr HOST:PORT]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/comm"
	"repro/internal/distributed"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transport"
)

func bucketCap(bucketBytes int) int {
	if bucketBytes <= 0 {
		return comm.DefaultBucketBytes
	}
	return bucketBytes
}

func parseKind(s string) (distributed.Kind, error) {
	switch s {
	case "rdma":
		return distributed.RDMA, nil
	case "rdma-copy":
		return distributed.RDMACopy, nil
	case "grpc-rdma":
		return distributed.GRPCRDMA, nil
	case "grpc-tcp":
		return distributed.GRPCTCP, nil
	default:
		return 0, fmt.Errorf("unknown mechanism %q", s)
	}
}

func main() {
	mech := flag.String("mechanism", "rdma", "rdma | rdma-copy | grpc-rdma | grpc-tcp")
	topology := flag.String("topology", "ps", "gradient exchange: ps | sharded-ps | ring | tree (sharded-ps spreads buckets across -ps-shards shard tasks; ring/tree replicate variables on every worker and all-reduce gradients; -ps is ignored)")
	bucketBytes := flag.Int("bucket-bytes", 0, "all-reduce gradient bucket capacity in bytes (0 = 64 KiB; gradients pack same-dtype buckets in backward-flush order)")
	psShards := flag.Int("ps-shards", 2, "sharded-ps: shard-task count K; buckets map to shards by the deterministic least-loaded map")
	aggGroup := flag.Int("agg-group", 0, "sharded-ps: two-level hierarchical aggregation group size (0/1 = flat; groups of N fold at a head before pushing partials to the shards)")
	workers := flag.Int("workers", 2, "worker count")
	psCount := flag.Int("ps", 2, "parameter-server count (ps topology only)")
	iters := flag.Int("iters", 30, "training iterations")
	batch := flag.Int("batch", 16, "per-worker batch size")
	kernelWorkers := flag.Int("kernel-workers", 0, "compute-kernel pool size shared by all servers (0 = GOMAXPROCS); results are bit-identical at any size")
	optimizer := flag.String("optimizer", "sgd", "sgd | momentum | adam")
	dot := flag.String("dot", "", "write the partitioned graph as Graphviz DOT to this file")
	tracePath := flag.String("trace", "", "write a chrome://tracing timeline JSON to this file")
	dropRate := flag.Float64("drop-rate", 0, "chaos: fraction of RDMA transfers to drop (retried transparently; no-op for mechanisms that bypass the emulated fabric)")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: schedule seed (reproducible fault stream)")
	stripes := flag.Int("stripes", 1, "stripe large tensor transfers across up to N QP lanes per peer (1 = single lane)")
	coalesce := flag.Int("coalesce", 0, "batch static tensors smaller than N bytes into one coalesced write per peer pair (0 = off)")
	qpSlots := flag.Int("qp-slots", 0, "multiplex all peer channels over a bounded pool of N QP slots per device (0 = direct per-peer QPs; with N, per-task QP state is O(slots) instead of O(peers))")
	lossyFabric := flag.Bool("lossy-fabric", false, "run one-sided writes under the lossy-fabric protocol: every chunk is tagged (tensor-id, seq) and dropped chunks are NACKed and selectively retransmitted (RDMA mechanism only)")
	chunkDropRate := flag.Float64("chunk-drop-rate", 0, "chaos: fraction of tagged chunks to drop silently on the wire (requires -lossy-fabric; recovered per-chunk, never by connection replay)")
	heartbeat := flag.Duration("heartbeat", 0, "enable the lease failure detector and crash recovery, pinging each task at this period (0 = off; lease timeout is 10x the period; RDMA mechanisms only)")
	ckptEvery := flag.Int("checkpoint-every", 5, "with -heartbeat, checkpoint the cluster every N steps (rollback target after a crash)")
	obsAddr := flag.String("obs-addr", "", "serve live observability HTTP on this address (Prometheus /metrics, /trace JSON, /steps report, /debug/pprof/); empty = off")
	flag.Parse()

	kind, err := parseKind(*mech)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdmadl-train: %v\n", err)
		os.Exit(2)
	}
	topo, err := comm.ParseTopology(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdmadl-train: %v\n", err)
		os.Exit(2)
	}
	tf := trainFlags{
		Kind: kind, Topology: topo,
		DropRate: *dropRate, Stripes: *stripes, QPSlots: *qpSlots,
		LossyFabric: *lossyFabric, ChunkDropRate: *chunkDropRate,
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "ps-shards":
			tf.PSShardsSet = true
		case "agg-group":
			tf.AggGroupSet = true
		}
	})
	if err := validateFlags(tf); err != nil {
		fmt.Fprintf(os.Stderr, "rdmadl-train: %v\n", err)
		os.Exit(2)
	}
	if err := run(kind, *topology, *bucketBytes, *psShards, *aggGroup, *workers, *psCount, *iters, *batch, *kernelWorkers, *optimizer, *dot, *tracePath,
		*dropRate, *chaosSeed, *stripes, *coalesce, *qpSlots, *lossyFabric, *chunkDropRate, *heartbeat, *ckptEvery, *obsAddr); err != nil {
		fmt.Fprintf(os.Stderr, "rdmadl-train: %v\n", err)
		os.Exit(1)
	}
}

func run(kind distributed.Kind, topology string, bucketBytes, psShards, aggGroup, workers, psCount, iters, batch, kernelWorkers int, optimizer, dotPath, tracePath string,
	dropRate float64, chaosSeed int64, stripes, coalesce, qpSlots int, lossyFabric bool, chunkDropRate float64, heartbeat time.Duration, ckptEvery int, obsAddr string) error {
	var rec *trace.Recorder
	if tracePath != "" {
		rec = trace.NewRecorder(0)
	}
	job, err := distributed.BuildMLPTraining(distributed.MLPConfig{
		Workers: workers, PSCount: psCount, Batch: batch,
		In: 32, Hidden: 64, Classes: 8, LR: 0.2,
		Optimizer: optimizer,
		Topology:  topology, BucketBytes: bucketBytes,
		PSShards: psShards, AggGroup: aggGroup,
	}, 1)
	if err != nil {
		return err
	}
	cl, err := distributed.Launch(job.Builder, distributed.Config{
		Kind:          kind,
		ArenaBytes:    16 << 20,
		KernelWorkers: kernelWorkers,
		RingCfg:       transport.RingConfig{Slots: 32, SlotSize: 64 << 10},
		Trace:         rec,
		QPSlots:       qpSlots,
		LossyFabric:   lossyFabric,
		Transfer: rdma.TransferOpts{
			Stripes:           stripes,
			CoalesceThreshold: coalesce,
		},
	})
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := job.InitAll(cl); err != nil {
		return err
	}

	if obsAddr != "" {
		obsSrv := obs.NewServer(obs.Options{
			Metrics: cl.MetricsSnapshot,
			Hists:   cl.HistSnapshots,
			Steps:   cl.StepSummaries,
			Trace:   rec,
		})
		addr, err := obsSrv.Start(obsAddr)
		if err != nil {
			return err
		}
		defer obsSrv.Close()
		fmt.Printf("obs: serving http://%s/metrics (also /trace, /steps, /debug/pprof/)\n", addr)
	}

	var inj *chaos.Injector
	if dropRate > 0 || chunkDropRate > 0 {
		inj = chaos.New(chaos.Plan{Seed: chaosSeed, DropRate: dropRate, ChunkDropRate: chunkDropRate})
		inj.Install(cl.Fabric())
		inj.Start()
		defer inj.Stop()
		if dropRate > 0 {
			fmt.Printf("chaos: dropping %.0f%% of transfers (seed %d)\n", dropRate*100, chaosSeed)
		}
		if chunkDropRate > 0 {
			fmt.Printf("chaos: dropping %.0f%% of tagged chunks on the wire (seed %d; selective retransmit heals them)\n", chunkDropRate*100, chaosSeed)
		}
	}

	feeds := job.SyntheticDataset(7)
	fetches := make(map[string][]string)
	for k, task := range job.WorkerTasks {
		fetches[task] = []string{job.LossName(k)}
	}
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		if err := cl.Result().Graph.WriteDot(f, "rdmadl-train"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote partitioned graph to %s\n", dotPath)
	}
	if job.Topology == comm.TopologyPS {
		fmt.Printf("mechanism=%s topology=%s workers=%d ps=%d batch=%d optimizer=%s stripes=%d coalesce=%dB\n",
			kind, job.Topology, workers, psCount, batch, optimizer, stripes, coalesce)
	} else if job.Topology == comm.TopologyShardedPS {
		fmt.Printf("mechanism=%s topology=%s workers=%d shards=%d agg-group=%d batch=%d optimizer=%s stripes=%d coalesce=%dB (-ps ignored: one task per shard)\n",
			kind, job.Topology, workers, job.ShardMap.Shards, aggGroup, batch, optimizer, stripes, coalesce)
		fmt.Printf("bucket -> shard map (capacity %dB, least-loaded):\n", bucketCap(bucketBytes))
		for _, b := range job.Buckets {
			names := make([]string, len(b.Members))
			for i, m := range b.Members {
				names[i] = m.Name
			}
			fmt.Printf("  bucket %d -> ps%d: %6dB %s %v\n",
				b.Index, job.ShardMap.Assign[b.Index], b.ByteSize(), b.DType, names)
		}
	} else {
		fmt.Printf("mechanism=%s topology=%s workers=%d batch=%d optimizer=%s stripes=%d coalesce=%dB (-ps ignored: variables replicate on every worker)\n",
			kind, job.Topology, workers, batch, optimizer, stripes, coalesce)
		fmt.Printf("gradient buckets (capacity %dB, backward-flush order):\n", bucketCap(bucketBytes))
		for _, b := range job.Buckets {
			names := make([]string, len(b.Members))
			for i, m := range b.Members {
				names[i] = m.Name
			}
			fmt.Printf("  bucket %d: %6dB %s %v\n", b.Index, b.ByteSize(), b.DType, names)
		}
	}
	fmt.Print(cl.Result().Summary())

	report := func(iter int, out map[string]map[string]*tensor.Tensor) {
		var sum float32
		for k, task := range job.WorkerTasks {
			sum += out[task][job.LossName(k)].Float32s()[0]
		}
		if iter%5 == 0 || iter == iters-1 {
			fmt.Printf("iter %3d  mean loss %.4f\n", iter, sum/float32(workers))
		}
	}
	var recov *distributed.Recovery
	if heartbeat > 0 {
		recov, err = cl.EnableRecovery(distributed.RecoveryConfig{
			Heartbeat:       distributed.HeartbeatConfig{Period: heartbeat},
			CheckpointEvery: ckptEvery,
		})
		if err != nil {
			return err
		}
		fmt.Printf("recovery: lease period %v, checkpoint every %d steps\n", heartbeat, ckptEvery)
		if err := recov.Run(iters, feeds, fetches, report); err != nil {
			return err
		}
	} else {
		for iter := 0; iter < iters; iter++ {
			out, err := cl.Step(iter, feeds, fetches)
			if err != nil {
				return err
			}
			report(iter, out)
		}
	}

	if rec != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s\n", rec.Len(), tracePath)
	}

	fmt.Println("\nper-task communication counters:")
	for task, m := range cl.MetricsSnapshot() {
		fmt.Printf("  %-9s sent=%8dB msgs=%4d memcopies=%4d copied=%8dB serialized=%8dB zerocopy=%4d retries=%4d timeouts=%2d striped=%4d segs=%4d lanes=%2d coalesced=%4d/%d\n",
			task, m.BytesSent, m.Messages, m.MemCopies, m.CopiedBytes, m.SerializedBytes, m.ZeroCopyOps,
			m.Retries, m.Timeouts, m.StripedTransfers, m.StripeSegments, m.ActiveLanes(),
			m.CoalescedMessages, m.CoalesceFlushes)
		if qpSlots > 0 || lossyFabric {
			fmt.Printf("  %-9s qp_slots_active=%2d leases=%3d evictions=%4d busy=%4d retransmit_chunks=%4d nacks=%4d\n",
				"", m.QPSlotsActive, m.QPLeases, m.QPEvictions, m.QPBusy,
				m.RetransmitChunks, m.NacksSent)
		}
	}
	if inj != nil {
		c := inj.Counters()
		fmt.Printf("chaos: injected %d faults over %d decisions\n",
			c.Total(), c.Checked[chaos.Drop]+c.Checked[chaos.ChunkDrop])
	}
	if recov != nil {
		rs := recov.Metrics()
		fmt.Printf("recovery: heartbeats=%d missed=%d expiries=%d checkpoints=%d rollbacks=%d recoveries=%d rejoins=%d\n",
			rs.Heartbeats, rs.MissedBeats, rs.LeaseExpiries, rs.Checkpoints, rs.Rollbacks, rs.Recoveries, rs.Rejoins)
	}

	fmt.Println("\nstep-time breakdown:")
	obs.WriteStepReport(os.Stdout, cl.StepSummaries(), 0)

	comp := metrics.Compute()
	fmt.Printf("\ncompute: scratch hits=%d misses=%d discards=%d | recycle hits=%d misses=%d\n",
		comp.ScratchHits, comp.ScratchMisses, comp.ScratchDiscards,
		comp.RecycleHits, comp.RecycleMisses)
	if ks := metrics.KernelSnapshot(); len(ks) > 0 {
		fmt.Println("kernel time by operator (top 8):")
		if len(ks) > 8 {
			ks = ks[:8]
		}
		for _, s := range ks {
			fmt.Printf("  %-12s n=%5d total=%10v mean=%8v\n", s.Op, s.Count, s.Total, s.Mean())
		}
	}
	return nil
}
