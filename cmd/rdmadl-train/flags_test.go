package main

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/distributed"
)

// valid returns a flag set that passes validation; tests perturb one knob.
func valid() trainFlags {
	return trainFlags{Kind: distributed.RDMA, Topology: comm.TopologyPS, Stripes: 1}
}

// TestValidateFlags is the regression suite for the cross-flag rules: one
// case per rejected combination (and its accepted dual), so a future flag
// rearrangement cannot silently drop a rule.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*trainFlags)
		wantErr string // empty = must pass
	}{
		{"baseline", func(f *trainFlags) {}, ""},

		// Range rules.
		{"drop-rate negative", func(f *trainFlags) { f.DropRate = -0.1 }, "-drop-rate"},
		{"drop-rate one", func(f *trainFlags) { f.DropRate = 1 }, "-drop-rate"},
		{"stripes zero", func(f *trainFlags) { f.Stripes = 0 }, "-stripes"},
		{"qp-slots negative", func(f *trainFlags) { f.QPSlots = -1 }, "-qp-slots"},
		{"chunk-drop-rate negative", func(f *trainFlags) { f.ChunkDropRate = -0.5 }, "-chunk-drop-rate"},

		// -chunk-drop-rate requires the lossy-fabric protocol.
		{"chunk-drop without lossy-fabric",
			func(f *trainFlags) { f.ChunkDropRate = 0.1 }, "-chunk-drop-rate needs -lossy-fabric"},
		{"chunk-drop with lossy-fabric",
			func(f *trainFlags) { f.ChunkDropRate = 0.1; f.LossyFabric = true }, ""},

		// Fabric-level options under RPC mechanisms.
		{"lossy-fabric under grpc-tcp",
			func(f *trainFlags) { f.Kind = distributed.GRPCTCP; f.LossyFabric = true }, "-lossy-fabric needs an RDMA mechanism"},
		{"lossy-fabric under grpc-rdma",
			func(f *trainFlags) { f.Kind = distributed.GRPCRDMA; f.LossyFabric = true }, "-lossy-fabric needs an RDMA mechanism"},
		{"qp-slots under grpc-tcp",
			func(f *trainFlags) { f.Kind = distributed.GRPCTCP; f.QPSlots = 16 }, "-qp-slots needs an RDMA mechanism"},
		{"qp-slots under grpc-rdma",
			func(f *trainFlags) { f.Kind = distributed.GRPCRDMA; f.QPSlots = 16 }, "-qp-slots needs an RDMA mechanism"},
		{"stripes under grpc-tcp",
			func(f *trainFlags) { f.Kind = distributed.GRPCTCP; f.Stripes = 4 }, "-stripes needs an RDMA mechanism"},
		{"stripes under grpc-rdma",
			func(f *trainFlags) { f.Kind = distributed.GRPCRDMA; f.Stripes = 4 }, "-stripes needs an RDMA mechanism"},
		// The same options are fine on the RDMA mechanisms.
		{"lossy-fabric under rdma", func(f *trainFlags) { f.LossyFabric = true }, ""},
		{"qp-slots under rdma-copy",
			func(f *trainFlags) { f.Kind = distributed.RDMACopy; f.QPSlots = 16 }, ""},
		{"stripes under rdma", func(f *trainFlags) { f.Stripes = 4 }, ""},
		// Default stripes=1 must not trip the RPC rule.
		{"grpc-tcp with default stripes",
			func(f *trainFlags) { f.Kind = distributed.GRPCTCP }, ""},

		// Sharding knobs only under sharded-ps, and only when explicitly set.
		{"ps-shards set under ps topology",
			func(f *trainFlags) { f.PSShardsSet = true }, "-ps-shards set but -topology ps"},
		{"agg-group set under ring topology",
			func(f *trainFlags) { f.Topology = comm.TopologyRing; f.AggGroupSet = true }, "-agg-group set but -topology ring"},
		{"ps-shards set under tree topology",
			func(f *trainFlags) { f.Topology = comm.TopologyTree; f.PSShardsSet = true }, "-ps-shards set but -topology tree"},
		{"ps-shards set under sharded-ps",
			func(f *trainFlags) { f.Topology = comm.TopologyShardedPS; f.PSShardsSet = true }, ""},
		{"agg-group set under sharded-ps",
			func(f *trainFlags) { f.Topology = comm.TopologyShardedPS; f.AggGroupSet = true }, ""},
		// Defaults under a non-sharded topology must pass: the values exist
		// but the user never asked for them.
		{"ps topology with unset shard knobs", func(f *trainFlags) {}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := valid()
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want pass, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
