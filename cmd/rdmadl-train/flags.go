package main

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/distributed"
)

// trainFlags collects every parsed flag value that participates in
// cross-flag validation, plus which flags the user set explicitly — rules
// like "-ps-shards only under -topology sharded-ps" must not trip on the
// flag's default value, so main fills the *Set fields from flag.Visit.
type trainFlags struct {
	Kind     distributed.Kind
	Topology comm.Topology

	DropRate      float64
	Stripes       int
	QPSlots       int
	LossyFabric   bool
	ChunkDropRate float64

	PSShardsSet bool
	AggGroupSet bool
}

// validateFlags rejects flag combinations that would otherwise run with a
// silently ignored or meaningless option. Each rule names both the flag and
// why the combination cannot work, so the error doubles as documentation.
func validateFlags(f trainFlags) error {
	if f.DropRate < 0 || f.DropRate >= 1 {
		return fmt.Errorf("-drop-rate %v outside [0, 1)", f.DropRate)
	}
	if f.Stripes < 1 {
		return fmt.Errorf("-stripes %d below 1", f.Stripes)
	}
	if f.ChunkDropRate < 0 || f.ChunkDropRate >= 1 {
		return fmt.Errorf("-chunk-drop-rate %v outside [0, 1)", f.ChunkDropRate)
	}
	if f.ChunkDropRate > 0 && !f.LossyFabric {
		return fmt.Errorf("-chunk-drop-rate needs -lossy-fabric (plain writes have no per-chunk recovery)")
	}
	if f.QPSlots < 0 {
		return fmt.Errorf("-qp-slots %d below 0", f.QPSlots)
	}
	// The fabric-level options only exist on the one-sided RDMA data path;
	// the gRPC mechanisms move tensors through the RPC layer and would
	// silently ignore them.
	if f.Kind.UsesRPC() {
		switch {
		case f.LossyFabric:
			return fmt.Errorf("-lossy-fabric needs an RDMA mechanism; %s moves tensors over RPC with no tagged-chunk protocol", f.Kind)
		case f.QPSlots > 0:
			return fmt.Errorf("-qp-slots needs an RDMA mechanism; %s does not lease QP slots", f.Kind)
		case f.Stripes > 1:
			return fmt.Errorf("-stripes needs an RDMA mechanism; %s cannot stripe RPC messages across QP lanes", f.Kind)
		}
	}
	// Sharding knobs describe the sharded-ps gradient exchange; under any
	// other topology an explicit value would be dropped on the floor.
	if f.Topology != comm.TopologyShardedPS {
		if f.PSShardsSet {
			return fmt.Errorf("-ps-shards set but -topology %s has no shard tasks (use -topology sharded-ps)", f.Topology)
		}
		if f.AggGroupSet {
			return fmt.Errorf("-agg-group set but -topology %s has no hierarchical aggregation (use -topology sharded-ps)", f.Topology)
		}
	}
	return nil
}
