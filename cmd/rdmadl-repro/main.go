// Command rdmadl-repro regenerates every table and figure of the paper's
// evaluation section and prints them as aligned text (or CSV).
//
// Usage:
//
//	rdmadl-repro [-experiment all|table2|figure7|figure8|figure9|figure10|
//	              figure11|figure12|table3|claims|qps] [-csv] [-iters N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	outdir := flag.String("outdir", "", "also write each experiment as <name>.csv into this directory")
	iters := flag.Int("iters", 0, "override convergence run length (0 = defaults)")
	seed := flag.Int64("seed", 42, "seed for the convergence training runs")
	flag.Parse()

	csvIndex := make(map[string]int)
	emit := func(t *bench.Table) {
		if *csv {
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Fprint(os.Stdout)
		}
		if *outdir != "" {
			name := *experiment
			if csvIndex[name] > 0 {
				name = fmt.Sprintf("%s_%d", name, csvIndex[name])
			}
			csvIndex[*experiment]++
			path := fmt.Sprintf("%s/%s.csv", *outdir, name)
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdmadl-repro: %v\n", err)
				os.Exit(1)
			}
			t.CSV(f)
			f.Close()
		}
	}
	runFig10 := func() error {
		tables, _, err := bench.Figure10(*seed, *iters)
		if err != nil {
			return err
		}
		for _, t := range tables {
			emit(t)
		}
		return nil
	}

	gens := map[string]func() error{
		"table2":    func() error { emit(bench.Table2()); return nil },
		"figure7":   func() error { emit(bench.Figure7()); return nil },
		"figure8":   func() error { emit(bench.Figure8()); return nil },
		"figure9":   func() error { emit(bench.Figure9()); return nil },
		"figure10":  runFig10,
		"figure11":  func() error { emit(bench.Figure11()); return nil },
		"figure12":  func() error { emit(bench.Figure12()); return nil },
		"table3":    func() error { emit(bench.Table3()); return nil },
		"claims":    func() error { emit(bench.Section51Claims()); return nil },
		"qps":       func() error { emit(bench.QPSweep()); return nil },
		"bandwidth": func() error { emit(bench.BandwidthSweep()); return nil },
		"placement": func() error { emit(bench.PlacementSweep()); return nil },
		// Not part of "all": drives the real in-process protocol stacks and
		// takes noticeably longer than the simulator sweeps.
		"functional": func() error {
			t, err := bench.FunctionalMicroTable([]int{64 << 10, 1 << 20, 4 << 20}, 10)
			if err != nil {
				return err
			}
			emit(t)
			return nil
		},
	}
	order := []string{"table2", "figure7", "figure8", "figure9", "figure10",
		"figure11", "figure12", "table3", "claims", "qps", "bandwidth", "placement"}

	if *experiment == "all" {
		for _, name := range order {
			*experiment = name
			if err := gens[name](); err != nil {
				fmt.Fprintf(os.Stderr, "rdmadl-repro: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	gen, ok := gens[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "rdmadl-repro: unknown experiment %q (want one of %v)\n",
			*experiment, order)
		os.Exit(2)
	}
	if err := gen(); err != nil {
		fmt.Fprintf(os.Stderr, "rdmadl-repro: %v\n", err)
		os.Exit(1)
	}
}
