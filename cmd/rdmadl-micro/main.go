// Command rdmadl-micro runs the §5.1 micro-benchmark on the real in-process
// protocol stacks: a tensor of the given sizes is transferred from worker0
// to ps0 (which consumes it with reduce_max) under all four communication
// mechanisms, measuring host wall time.
//
// Usage:
//
//	rdmadl-micro [-iters N] [-maxsize BYTES]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	iters := flag.Int("iters", 20, "iterations per configuration")
	maxSize := flag.Int("maxsize", 16<<20, "largest tensor size in bytes")
	flag.Parse()

	var sizes []int
	for s := 4 << 10; s <= *maxSize; s <<= 2 {
		sizes = append(sizes, s)
	}
	t, err := bench.FunctionalMicroTable(sizes, *iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdmadl-micro: %v\n", err)
		os.Exit(1)
	}
	t.Fprint(os.Stdout)
}
