// Package repro's top-level benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation, plus functional benchmarks
// that drive the real in-process protocol stacks. Run with
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks time the full regeneration of that experiment's
// data (the simulator sweep); the functional benchmarks report real bytes
// moved per second through the emulated fabric under each mechanism.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/distributed"
	"repro/internal/models"
	"repro/internal/netsim"
	"repro/internal/transport"
)

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Table2().Rows) != 6 {
			b.Fatal("table 2 incomplete")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Figure7().Rows) == 0 {
			b.Fatal("figure 7 empty")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Figure8().Rows) == 0 {
			b.Fatal("figure 8 empty")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Figure9().Rows) == 0 {
			b.Fatal("figure 9 empty")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	// The convergence experiment trains real models; keep the per-op run
	// short and let testing.B decide repetitions.
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Figure10(int64(i+1), 12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Figure11().Rows) == 0 {
			b.Fatal("figure 11 empty")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Figure12().Rows) == 0 {
			b.Fatal("figure 12 empty")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Table3().Rows) != 6 {
			b.Fatal("table 3 incomplete")
		}
	}
}

// BenchmarkSimulatedIteration prices one simulated PS iteration per
// benchmark and mechanism (the inner loop of Figures 9/11/12).
func BenchmarkSimulatedIteration(b *testing.B) {
	for _, spec := range models.All() {
		for _, kind := range []distributed.Kind{distributed.GRPCTCP, distributed.GRPCRDMA, distributed.RDMA} {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, kind), func(b *testing.B) {
				sim := netsim.NewClusterSim(8, kind, false)
				for i := 0; i < b.N; i++ {
					if sim.IterationUS(spec, 32) <= 0 {
						b.Fatal("non-positive iteration time")
					}
				}
			})
		}
	}
}

// BenchmarkMicroTransfer drives the real in-process stacks: one tensor per
// iteration from worker0 to ps0 under each mechanism (the functional
// counterpart of Figure 8). SetBytes reports true payload throughput.
func BenchmarkMicroTransfer(b *testing.B) {
	kinds := []distributed.Kind{
		distributed.GRPCTCP, distributed.GRPCRDMA,
		distributed.RDMACopy, distributed.RDMA,
	}
	for _, kind := range kinds {
		for _, size := range []int{64 << 10, 1 << 20} {
			b.Run(fmt.Sprintf("%s/%s", kind, humanKB(size)), func(b *testing.B) {
				res, err := bench.FunctionalMicro(kind, size, b.N)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(size))
				_ = res
			})
		}
	}
}

func humanKB(b int) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%dKB", b>>10)
}

// BenchmarkPSTrainingStep measures a real distributed training step on the
// in-process cluster for each mechanism.
func BenchmarkPSTrainingStep(b *testing.B) {
	kinds := []distributed.Kind{
		distributed.GRPCTCP, distributed.GRPCRDMA,
		distributed.RDMACopy, distributed.RDMA,
	}
	for _, kind := range kinds {
		b.Run(kind.String(), func(b *testing.B) {
			job, err := distributed.BuildMLPTraining(distributed.MLPConfig{
				Workers: 2, PSCount: 2, Batch: 16,
				In: 64, Hidden: 128, Classes: 10, LR: 0.1,
			}, 1)
			if err != nil {
				b.Fatal(err)
			}
			cl, err := distributed.Launch(job.Builder, distributed.Config{
				Kind:       kind,
				ArenaBytes: 32 << 20,
				RingCfg:    transport.RingConfig{Slots: 32, SlotSize: 64 << 10},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if err := job.InitAll(cl); err != nil {
				b.Fatal(err)
			}
			feeds := job.SyntheticDataset(3)
			fetches := map[string][]string{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Step(i, feeds, fetches); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
