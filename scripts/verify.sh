#!/usr/bin/env bash
# Tier-1 verification: build, vet, race-test everything, then smoke each
# fuzz target briefly. CI and pre-commit both run this; keep it fast enough
# to run on every change (~2-3 minutes).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

# The compute kernels promise bit-identical results at every pool size; run
# the packages that exercise that contract under the race detector at both
# one and four scheduler threads.
echo "== go test -race -cpu=1,4 (kernel parallelism) =="
go test -race -cpu=1,4 ./internal/parallel/ ./internal/tensor/ ./internal/exec/

# Crash-recovery and close/poll regression gates. go test -race ./... above
# already runs these; naming them keeps the acceptance bar explicit even if
# package filters change.
echo "== recovery & close/poll regression gates (-race) =="
go test -race -run '^TestRecoveryWorkerCrashBitIdentical$|^TestHeartbeatDetectorExpiresAndResumes$|^TestLoadCheckpointRestoresRegisteredStorage$' ./internal/distributed/
go test -race -run '^TestCloseMidTransferFailsFast$|^TestCloseMidStripedTransferFailsFast$|^TestClosePeerSeversThenRebuilds$' ./internal/rdma/
go test -race -run '^TestPurePollingBoundedSpin$|^TestPollBackoffPreservesFairness$' ./internal/exec/

# Observability gates: the Prometheus encoder golden file, the live obs
# endpoint, and the metrics/trace/step-books consistency suite (including
# its recovery-rebuild variant) must hold under the race detector.
echo "== observability & consistency gates (-race) =="
go test -race -run '^TestWritePromGolden$|^TestPromScrapeParsesAndIsConsistent$|^TestServerEndpoints$' ./internal/obs/
go test -race -run '^TestMetricsTraceConsistency$|^TestObsConsistencySurvivesRecovery$' ./internal/distributed/
go test -race -run '^TestHistogramConcurrentRecord$|^TestRecorderOverflowIsVisible$' ./internal/metrics/ ./internal/trace/

# Collective-plane gates: the comm package in full, topology parity (ring
# and tree must produce the PS plane's exact bits across worker counts and
# bucket geometries), and the ring under chaos — seeded faults retried to
# identical bits, a mid-all-reduce crash recovered bit-identically.
echo "== collective plane & topology parity gates (-race) =="
go test -race ./internal/comm/
go test -race -run '^TestTopologyParityMLP$|^TestTopologyParityWorkerSweep$|^TestSingleGradientModelTrainsAllTopologies$' ./internal/distributed/
go test -race -run '^TestRingChaosBitIdenticalUnderFaults$|^TestRecoveryRingCrashBitIdentical$' ./internal/distributed/

# Sharded-PS gates: shard/worker-sweep and hierarchical parity against the
# single-PS bits, plus the sharded plane under chaos and crash recovery.
echo "== sharded-PS parity & chaos gates (-race) =="
go test -race -run '^TestShardedPSParityShardWorkerSweep$|^TestShardedPSHierarchicalParity$|^TestShardedPSParityBucketSizes$' ./internal/distributed/
go test -race -run '^TestShardedPSChaosBitIdenticalUnderFaults$|^TestRecoveryShardedPSCrashBitIdentical$' ./internal/distributed/

# Pipelined-stripe gates: the copy-overlapped send path must stay
# bit-identical to the staged path, keep per-lane doorbell batching on the
# staged path, and heal injected drops by re-staging the same bytes.
echo "== pipelined stripe & doorbell batch gates (-race) =="
go test -race -run '^TestSendRetryFromParity$|^TestSendRetryDoorbellBatchesPerLane$|^TestSendRetryFromRecoversFromDrops$|^TestMemcpyBatchValidatesBeforePosting$' ./internal/rdma/

# QP-scale & lossy-fabric gates: the 256-task netsim budget check (muxed
# wiring within explicit per-task QP state and setup-time budgets that
# all-pairs wiring blows), the 64-task real-bytes training run through the
# QP mux under the race detector, and the lossy-fabric recovery suite —
# seeded chunk drops healed bit-identically by per-tensor selective
# retransmit, a blackholed tensor failing typed and bounded, and a
# mid-loss step abort never leaking a retransmitted chunk into a later
# iteration.
echo "== QP-scale & lossy-fabric gates (-race) =="
go test -run '^TestScale256TaskQPBudgets$' ./internal/netsim/
go test -race -run '^Test64TaskMuxTrainingUnderRace$|^TestMuxTrainingParity$' ./internal/distributed/
go test -race -run '^TestLossyTrainingBitIdentical$|^TestLossyTensorBlackholeFailsTyped$|^TestLossyStepAbortThenRecover$' ./internal/distributed/
go test -race -run '^TestQPBusyRetriesDoNotBurnRetryBudget$' ./internal/rdma/

# Serving-plane gates: the zero-copy weight-publication protocol proven
# under the race detector. Staleness bound — no replica serves weights more
# than one version behind the trainer, bit-identical to the trainer's
# snapshot, under continuous publication and concurrent queries. Torn-read
# — a trainer crash mid-publication leaves every replica on the last
# complete version (the version word is written after the payload, so a
# partial bank is never observable). Overload-shed — the frontend's bounded
# queue sheds typed ErrOverloaded instead of queueing unboundedly. Plus the
# crash/readmission cycle through the lease detector, the QP-mux sever-race
# regression, the histogram torn-snapshot fixes, the netsim million-user
# model, and the trainer-flag validation matrix.
echo "== serving plane gates (-race) =="
go test -race -run '^TestStalenessBoundUnderLoad$|^TestPublishBitIdentical$|^TestTrainerCrashMidPublication$|^TestOverloadShed$|^TestPublisherBankHeldTimeout$|^TestReplicaRestartReadmission$' ./internal/serve/
go test -race -run '^TestServingFleetCrashRecovery$|^TestServingFleetOverload$' ./internal/distributed/
go test -race -run '^TestQPMuxSeverRace$' ./internal/rdma/
go test -race -run '^TestQuantileTornSnapshot$|^TestQuantileEdgeCases$|^TestMergeFamiliesUnion$' ./internal/metrics/
go test -run '^TestServeModelMillionUsers$|^TestServeStalenessThroughputTradeoff$' ./internal/netsim/
go test -race -run '^TestValidateFlags$' ./cmd/rdmadl-train/

# Fuzz smoke: each target gets a short budget. The engine accepts one
# -fuzz pattern per invocation, so loop explicitly.
FUZZTIME="${FUZZTIME:-5s}"
echo "== fuzz smoke (${FUZZTIME}/target) =="
go test -run=NONE -fuzz='^FuzzUnmarshalStaticSlotDesc$' -fuzztime="$FUZZTIME" ./internal/rdma/
go test -run=NONE -fuzz='^FuzzUnmarshalDynSlotDesc$' -fuzztime="$FUZZTIME" ./internal/rdma/
go test -run=NONE -fuzz='^FuzzDecodeDynMeta$' -fuzztime="$FUZZTIME" ./internal/rdma/
go test -run=NONE -fuzz='^FuzzUnmarshalStripeDesc$' -fuzztime="$FUZZTIME" ./internal/rdma/
go test -run=NONE -fuzz='^FuzzUnmarshalCoalescedSlotDesc$' -fuzztime="$FUZZTIME" ./internal/rdma/
go test -run=NONE -fuzz='^FuzzUnmarshalRetransmitDesc$' -fuzztime="$FUZZTIME" ./internal/rdma/
go test -run=NONE -fuzz='^FuzzUnmarshalNackDesc$' -fuzztime="$FUZZTIME" ./internal/rdma/
go test -run=NONE -fuzz='^FuzzTensorMessageUnmarshal$' -fuzztime="$FUZZTIME" ./internal/wire/
go test -run=NONE -fuzz='^FuzzDecodeBatch$' -fuzztime="$FUZZTIME" ./internal/wire/
go test -run=NONE -fuzz='^FuzzHistogramRecord$' -fuzztime="$FUZZTIME" ./internal/metrics/
go test -run=NONE -fuzz='^FuzzUnmarshalBucketDesc$' -fuzztime="$FUZZTIME" ./internal/comm/
go test -run=NONE -fuzz='^FuzzUnmarshalShardMap$' -fuzztime="$FUZZTIME" ./internal/comm/

echo "verify: OK"
