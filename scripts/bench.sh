#!/usr/bin/env bash
# Kernel microbenchmarks -> BENCH_kernels.json.
# Transfer benchmarks (striping + coalescing) -> BENCH_transfer.json.
# Observability overhead (histograms / tracing on the train step) -> BENCH_obs.json.
# All-reduce topology ablation (ps vs ring vs tree, emulated + modeled) -> BENCH_allreduce.json.
# Scale story (ps vs sharded-ps vs ring per-task goodput at 4/8 tasks) -> BENCH_scale.json.
# Serving plane (emulated fleet + netsim million-user staleness-vs-throughput model) -> BENCH_serve.json.
#
# Runs the tensor kernel benchmarks (seed kernel vs new serial vs new
# parallel) and the exec train-step benchmark (recycle on/off, -benchmem),
# then derives headline speedup/alloc ratios. num_cpu is recorded because
# the parallel numbers are only meaningful relative to the cores available:
# on a 1-CPU box parallel==serial and all speedup comes from cache blocking
# and im2col.
#
# The transfer suite sweeps stripe counts 1..8 over a 16 MiB payload under
# the modeled per-lane bandwidth (see internal/rdma/bench_transfer_test.go)
# and compares 64 individual small-message sends against one coalesced
# batch; the JSON records MB/s per configuration plus speedup ratios over
# the single-lane / individual baselines.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_kernels.json}"
OUT_TRANSFER="${2:-BENCH_transfer.json}"
OUT_OBS="${3:-BENCH_obs.json}"
OUT_AR="${4:-BENCH_allreduce.json}"
OUT_SCALE="${5:-BENCH_scale.json}"
OUT_SERVE="${6:-BENCH_serve.json}"
BENCHTIME="${BENCHTIME:-1s}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== kernel benchmarks (benchtime=$BENCHTIME) ==" >&2
go test -run='^$' -bench='^(BenchmarkMatMul|BenchmarkConv2D|BenchmarkConv2DGrad|BenchmarkSoftmax)$' \
    -benchtime="$BENCHTIME" ./internal/tensor/ | tee "$TMP/tensor.txt" >&2
echo "== train-step benchmark ==" >&2
go test -run='^$' -bench='^BenchmarkTrainStep$' -benchtime="$BENCHTIME" -benchmem \
    ./internal/exec/ | tee "$TMP/exec.txt" >&2

cat "$TMP/tensor.txt" "$TMP/exec.txt" | awk -v num_cpu="$(nproc)" -v go_ver="$(go env GOVERSION)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns[name] = $3
    order[++n] = name
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "allocs/op") allocs[name] = $i
        if ($(i+1) == "B/op")      bytes[name]  = $i
    }
}
function ratio(a, b) { return (ns[a] > 0 && ns[b] > 0) ? sprintf("%.2f", ns[a] / ns[b]) : "null" }
END {
    printf "{\n  \"num_cpu\": %d,\n  \"go\": \"%s\",\n", num_cpu, go_ver
    printf "  \"note\": \"speedup_* = ns/op ratio vs this PR%s parallel kernels; on a 1-CPU machine parallel==serial and gains come from cache blocking + im2col\",\n", "\x27s"
    printf "  \"speedups\": {\n"
    printf "    \"matmul_512_parallel_vs_seed\": %s,\n",   ratio("MatMul/512x512x512/seed",   "MatMul/512x512x512/parallel")
    printf "    \"matmul_512_parallel_vs_serial\": %s,\n", ratio("MatMul/512x512x512/serial", "MatMul/512x512x512/parallel")
    printf "    \"matmul_128_parallel_vs_seed\": %s,\n",   ratio("MatMul/128x128x128/seed",   "MatMul/128x128x128/parallel")
    printf "    \"conv_lenet_c1_parallel_vs_seed\": %s,\n", ratio("Conv2D/lenet-c1/seed", "Conv2D/lenet-c1/parallel")
    printf "    \"conv_lenet_c3_parallel_vs_seed\": %s,\n", ratio("Conv2D/lenet-c3/seed", "Conv2D/lenet-c3/parallel")
    printf "    \"convgrad_lenet_c3_parallel_vs_serial\": %s\n", ratio("Conv2DGrad/lenet-c3/serial", "Conv2DGrad/lenet-c3/parallel")
    printf "  },\n"
    r = "TrainStep/recycle=true"; nr = "TrainStep/recycle=false"
    if (allocs[r] != "" && allocs[nr] != "") {
        printf "  \"train_step\": {\n"
        printf "    \"allocs_per_op_recycle\": %s,\n", allocs[r]
        printf "    \"allocs_per_op_norecycle\": %s,\n", allocs[nr]
        printf "    \"bytes_per_op_recycle\": %s,\n", bytes[r]
        printf "    \"bytes_per_op_norecycle\": %s,\n", bytes[nr]
        printf "    \"bytes_saved_pct\": %.1f\n", 100 * (1 - bytes[r] / bytes[nr])
        printf "  },\n"
    }
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns[name]
        if (allocs[name] != "") printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", bytes[name], allocs[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}' > "$OUT"

echo "wrote $OUT" >&2

echo "== transfer benchmarks (benchtime=$BENCHTIME) ==" >&2
go test -run='^$' -bench='^(BenchmarkTransferStriped|BenchmarkTransferPipelined|BenchmarkTransferCoalesce)$' \
    -benchtime="$BENCHTIME" ./internal/rdma/ | tee "$TMP/transfer.txt" >&2

awk -v num_cpu="$(nproc)" -v go_ver="$(go env GOVERSION)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    for (i = 2; i < NF; i++) if ($(i+1) == "MB/s") mbs[name] = $i
    order[++n] = name
}
function ratio(a, b) { return (mbs[a] > 0 && mbs[b] > 0) ? sprintf("%.2f", mbs[b] / mbs[a]) : "null" }
END {
    printf "{\n  \"num_cpu\": %d,\n  \"go\": \"%s\",\n", num_cpu, go_ver
    printf "  \"note\": \"MB/s under the modeled per-lane wire time (1 GB/s/lane + 2us post cost); stripe speedups are vs the stripes=1 row, pipelined speedup is SendRetryFrom (copy overlapped with posted writes) vs copy-then-send on the same 16-chunk/4-lane transfer, coalesce speedup is one batch flush vs 64 individual flagged writes\",\n"
    printf "  \"striped\": [\n"
    first = 1
    for (s = 1; s <= 16; s *= 2) {
        name = "TransferStriped/stripes=" s
        if (mbs[name] == "") continue
        printf "%s    {\"stripes\": %d, \"mb_per_s\": %s}", (first ? "" : ",\n"), s, mbs[name]
        first = 0
    }
    printf "\n  ],\n"
    printf "  \"speedup_vs_single_lane\": {\n"
    printf "    \"stripes_2\": %s,\n", ratio("TransferStriped/stripes=1", "TransferStriped/stripes=2")
    printf "    \"stripes_4\": %s,\n", ratio("TransferStriped/stripes=1", "TransferStriped/stripes=4")
    printf "    \"stripes_8\": %s\n",  ratio("TransferStriped/stripes=1", "TransferStriped/stripes=8")
    printf "  },\n"
    printf "  \"pipelined\": {\n"
    printf "    \"staged_mb_per_s\": %s,\n", mbs["TransferPipelined/staged"]
    printf "    \"pipelined_mb_per_s\": %s,\n", mbs["TransferPipelined/pipelined"]
    printf "    \"speedup\": %s\n", ratio("TransferPipelined/staged", "TransferPipelined/pipelined")
    printf "  },\n"
    printf "  \"coalesce\": {\n"
    printf "    \"individual_mb_per_s\": %s,\n", mbs["TransferCoalesce/individual"]
    printf "    \"coalesced_mb_per_s\": %s,\n", mbs["TransferCoalesce/coalesced"]
    printf "    \"speedup\": %s\n", ratio("TransferCoalesce/individual", "TransferCoalesce/coalesced")
    printf "  },\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"mb_per_s\": %s}%s\n", name, mbs[name], (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}' "$TMP/transfer.txt" > "$OUT_TRANSFER"

echo "wrote $OUT_TRANSFER" >&2

# Observability overhead: the same train step with histograms (the always-on
# production path — must stay near-free and allocation-identical to off) and
# with histograms + tracing (debug sessions; a bounded trace span per op).
# The per-step delta is nanoseconds against a multi-millisecond step, well
# inside scheduler jitter on a busy box, so each mode runs 5 times and the
# minimum ns/op represents it (least-noise estimator; allocs are exact and
# identical across runs).
echo "== observability overhead benchmark (benchtime=$BENCHTIME, best of 5) ==" >&2
go test -run='^$' -bench='^BenchmarkTrainStepObs$' -benchtime="$BENCHTIME" -count=5 -benchmem \
    ./internal/exec/ | tee "$TMP/obs.txt" >&2

awk -v num_cpu="$(nproc)" -v go_ver="$(go env GOVERSION)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^BenchmarkTrainStepObs\/obs=/, "", name)
    if (ns[name] == "" || $3 + 0 < ns[name] + 0) ns[name] = $3
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "allocs/op") allocs[name] = $i
        if ($(i+1) == "B/op")      bytes[name]  = $i
    }
}
function overhead(m) { return (ns["off"] > 0 && ns[m] > 0) ? sprintf("%.2f", 100 * (ns[m] / ns["off"] - 1)) : "null" }
END {
    printf "{\n  \"num_cpu\": %d,\n  \"go\": \"%s\",\n", num_cpu, go_ver
    printf "  \"note\": \"full train step (fwd+bwd+SGD) with the observability layer off, with per-op latency histograms, and with histograms + trace spans; ns_per_op is the minimum of 5 runs per mode and overhead_pct compares it against obs=off. Histograms are the always-on path: their record is lock-free and allocation-free, so allocs_per_op must match obs=off exactly.\",\n"
    printf "  \"overhead_pct\": {\n"
    printf "    \"hists\": %s,\n", overhead("hists")
    printf "    \"hists_trace\": %s\n", overhead("hists+trace")
    printf "  },\n"
    printf "  \"hist_allocs_match_off\": %s,\n", (allocs["hists"] != "" && allocs["hists"] == allocs["off"]) ? "true" : "false"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"mode\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n",
            name, ns[name], bytes[name], allocs[name], (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}' "$TMP/obs.txt" > "$OUT_OBS"

echo "wrote $OUT_OBS" >&2

# All-reduce topology ablation. Two sources feed one JSON:
#   - BenchmarkAllReduceTopology trains the real data-parallel MLP over the
#     emulated fabric under ps/ring/tree at 2/4/8 tasks, with a busy-until
#     timeline per NIC direction so the PS incast actually serializes
#     (see internal/distributed/bench_allreduce_test.go). Each iteration is
#     a full synchronous training step, so it runs a fixed 3 iterations
#     rather than scaling with BENCHTIME.
#   - BenchmarkAllReduceModel prices the same exchange under the netsim
#     alpha-beta cost model, adding the NetReduce in-network-reduction
#     column the emulated fabric cannot execute (it needs a programmable
#     switch folding gradients at line rate).
echo "== all-reduce topology ablation (3 steps/cell + netsim model) ==" >&2
go test -run='^$' -bench='^BenchmarkAllReduceTopology$' -benchtime=3x -timeout=20m \
    ./internal/distributed/ | tee "$TMP/allreduce.txt" >&2
go test -run='^$' -bench='^BenchmarkAllReduceModel$' -benchtime=100x \
    ./internal/netsim/ | tee -a "$TMP/allreduce.txt" >&2

awk -v num_cpu="$(nproc)" -v go_ver="$(go env GOVERSION)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "MB/s/task")       mbs[name] = $i
        if ($(i+1) == "ms/step")         ms[name]  = $i
        if ($(i+1) == "comm_frac")       cf[name]  = $i
        if ($(i+1) == "model_MB/s/task") mmbs[name] = $i
        if ($(i+1) == "model_step_us")   mus[name]  = $i
    }
}
function emu(topo, tasks) { return "AllReduceTopology/topo=" topo "/tasks=" tasks }
function mod(topo, tasks) { return "AllReduceModel/topo=" topo "/tasks=" tasks }
function ratio(den, num) { return (den > 0 && num > 0) ? sprintf("%.2f", num / den) : "null" }
END {
    printf "{\n  \"num_cpu\": %d,\n  \"go\": \"%s\",\n", num_cpu, go_ver
    printf "  \"note\": \"emulated = the real MLP trained over the RDMA emulator (per-task gradient goodput; NIC directions serialize at the modeled wire rate so the PS incast costs 2NG while ring links overlap); model = netsim alpha-beta pricing of the same exchange, with NetReduce in-network reduction as the third ablation column\",\n"
    printf "  \"emulated\": [\n"
    first = 1
    split("ps ring tree", topos, " ")
    for (t = 1; t <= 3; t++) for (k = 2; k <= 8; k *= 2) {
        name = emu(topos[t], k)
        if (mbs[name] == "") continue
        printf "%s    {\"topology\": \"%s\", \"tasks\": %d, \"mb_per_s_per_task\": %s, \"ms_per_step\": %s, \"comm_frac\": %s}",
            (first ? "" : ",\n"), topos[t], k, mbs[name], ms[name], cf[name]
        first = 0
    }
    printf "\n  ],\n"
    printf "  \"ring_vs_ps_speedup\": {\n"
    printf "    \"tasks_2\": %s,\n", ratio(mbs[emu("ps", 2)], mbs[emu("ring", 2)])
    printf "    \"tasks_4\": %s,\n", ratio(mbs[emu("ps", 4)], mbs[emu("ring", 4)])
    printf "    \"tasks_8\": %s\n",  ratio(mbs[emu("ps", 8)], mbs[emu("ring", 8)])
    printf "  },\n"
    printf "  \"ring_beats_ps_at_8_tasks\": %s,\n", (mbs[emu("ring", 8)] + 0 > mbs[emu("ps", 8)] + 0) ? "true" : "false"
    printf "  \"model\": [\n"
    first = 1
    split("ps sharded-ps ring tree netreduce", mtopos, " ")
    for (t = 1; t <= 5; t++) for (k = 2; k <= 8; k *= 2) {
        name = mod(mtopos[t], k)
        if (mmbs[name] == "") continue
        printf "%s    {\"topology\": \"%s\", \"tasks\": %d, \"model_mb_per_s_per_task\": %s, \"model_step_us\": %s}",
            (first ? "" : ",\n"), mtopos[t], k, mmbs[name], mus[name]
        first = 0
    }
    printf "\n  ],\n"
    printf "  \"model_netreduce_vs_ring_tasks_8\": %s\n", ratio(mmbs[mod("ring", 8)], mmbs[mod("netreduce", 8)])
    printf "}\n"
}' "$TMP/allreduce.txt" > "$OUT_AR"

echo "wrote $OUT_AR" >&2

# Scale story: per-task gradient goodput for the single PS, the K=2 sharded
# PS, and the ring at 4 and 8 tasks under the NIC-direction contention
# model. Each cell is a full synchronous training run (3 steps/iteration),
# repeated 5 times; the JSON keeps the best run per cell (max goodput, min
# step time) because scheduler noise on a loaded box only ever slows a cell
# down. The headline boolean is the PR's acceptance claim: splitting the
# gradient buckets across two shard NICs must beat the single-PS incast at
# 8 tasks.
#
# The qp_scale section prices per-task QP context state and connection
# setup at 8/64/256 tasks under the netsim QP cost model: all-pairs direct
# wiring (QPsPerPeer=4) against the QPMux lease pool (16 slots x 2 lanes).
# The muxed column must stay flat from 64 to 256 tasks — that is the
# O(N*K)-not-O(N^2) acceptance claim of the QP mux.
echo "== scale ablation (ps vs sharded-ps vs ring, 3 steps/cell, best of 5) ==" >&2
go test -run='^$' -bench='^BenchmarkScale$' -benchtime=3x -count=5 -timeout=30m \
    ./internal/distributed/ | tee "$TMP/scale.txt" >&2
echo "== QP state & setup scale model (direct vs muxed at 8/64/256 tasks) ==" >&2
go test -run='^$' -bench='^BenchmarkQPScale$' -benchtime=100x \
    ./internal/netsim/ | tee -a "$TMP/scale.txt" >&2

awk -v num_cpu="$(nproc)" -v go_ver="$(go env GOVERSION)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^BenchmarkScale\//, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "MB/s/task")          { if (mbs[name] == "" || $i + 0 > mbs[name] + 0) mbs[name] = $i }
        if ($(i+1) == "ms/step")            { if (ms[name] == ""  || $i + 0 < ms[name] + 0)  ms[name]  = $i }
        if ($(i+1) == "comm_frac")          { if (cf[name] == ""  || $i + 0 < cf[name] + 0)  cf[name]  = $i }
        if ($(i+1) == "commpoll_frac")      { if (cpf[name] == "" || $i + 0 < cpf[name] + 0) cpf[name] = $i }
        if ($(i+1) == "qp_state_bytes/task") qsb[name] = $i
        if ($(i+1) == "setup_us/task")       qsu[name] = $i
        if ($(i+1) == "qps/task")            qpt[name] = $i
    }
    if (!(name in seen)) { seen[name] = 1; order[++n] = name }
}
function cell(topo, tasks) { return "topo=" topo "/tasks=" tasks }
function qcell(mode, tasks) { return "BenchmarkQPScale/mode=" mode "/tasks=" tasks }
function ratio(den, num) { return (den > 0 && num > 0) ? sprintf("%.2f", num / den) : "null" }
END {
    printf "{\n  \"num_cpu\": %d,\n  \"go\": \"%s\",\n", num_cpu, go_ver
    printf "  \"note\": \"per-task gradient goodput of the symmetric benchmark MLP under NIC-direction contention; best of 5 runs per cell (max MB/s, min ms/step); sharded-ps runs K=2 shard tasks with the deterministic bucket->shard map, bit-identical to the single PS from the same seed; commpoll_frac is the workers Comm+PollWait share of accounted time\",\n"
    printf "  \"cells\": [\n"
    first = 1
    split("ps sharded-ps ring", topos, " ")
    for (t = 1; t <= 3; t++) for (k = 4; k <= 8; k *= 2) {
        name = cell(topos[t], k)
        if (mbs[name] == "") continue
        printf "%s    {\"topology\": \"%s\", \"tasks\": %d, \"mb_per_s_per_task\": %s, \"ms_per_step\": %s, \"comm_frac\": %s, \"commpoll_frac\": %s}",
            (first ? "" : ",\n"), topos[t], k, mbs[name], ms[name], cf[name], cpf[name]
        first = 0
    }
    printf "\n  ],\n"
    printf "  \"sharded_vs_ps_speedup\": {\n"
    printf "    \"tasks_4\": %s,\n", ratio(mbs[cell("ps", 4)], mbs[cell("sharded-ps", 4)])
    printf "    \"tasks_8\": %s\n",  ratio(mbs[cell("ps", 8)], mbs[cell("sharded-ps", 8)])
    printf "  },\n"
    printf "  \"sharded_beats_ps_at_8_tasks\": %s,\n", (mbs[cell("sharded-ps", 8)] + 0 > mbs[cell("ps", 8)] + 0) ? "true" : "false"
    printf "  \"qp_scale\": [\n"
    first = 1
    split("direct muxed", modes, " ")
    split("8 64 256", qtasks, " ")
    for (m = 1; m <= 2; m++) for (q = 1; q <= 3; q++) {
        k = qtasks[q]
        name = qcell(modes[m], k)
        if (qsb[name] == "") continue
        printf "%s    {\"mode\": \"%s\", \"tasks\": %d, \"qps_per_task\": %s, \"qp_state_bytes_per_task\": %s, \"setup_us_per_task\": %s}",
            (first ? "" : ",\n"), modes[m], k, qpt[name], qsb[name], qsu[name]
        first = 0
    }
    printf "\n  ],\n"
    printf "  \"muxed_qp_state_flat_64_to_256\": %s,\n", (qsb[qcell("muxed", 64)] != "" && qsb[qcell("muxed", 64)] + 0 == qsb[qcell("muxed", 256)] + 0) ? "true" : "false"
    printf "  \"direct_vs_muxed_state_ratio_256\": %s\n", ratio(qsb[qcell("muxed", 256)], qsb[qcell("direct", 256)])
    printf "}\n"
}' "$TMP/scale.txt" > "$OUT_SCALE"

echo "wrote $OUT_SCALE" >&2

# Serving plane: staleness vs throughput. Two sources feed one JSON:
#   - BenchmarkServingFleet drives the real publisher/replica/frontend stack
#     over the emulated fabric at 1/2/4 replicas; each iteration publishes a
#     version and serves a full batch per replica. The staleness_versions
#     metric must report 1 (the protocol's bound) in every cell.
#   - BenchmarkServeModel prices the million-user load point under the
#     netsim closed-form model across publish cadences — the curve where
#     denser publication tightens wall-clock staleness but costs capacity,
#     and a cadence the fan-out cannot keep up with breaks the one-version
#     bound.
echo "== serving plane (emulated fleet + netsim million-user model) ==" >&2
go test -run='^$' -bench='^BenchmarkServingFleet$' -benchtime=5x -timeout=10m \
    ./internal/distributed/ | tee "$TMP/serve.txt" >&2
go test -run='^$' -bench='^BenchmarkServeModel$' -benchtime=100x \
    ./internal/netsim/ | tee -a "$TMP/serve.txt" >&2

awk -v num_cpu="$(nproc)" -v go_ver="$(go env GOVERSION)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "served_qps")               qps[name] = $i
        if ($(i+1) == "shed_pct")                 shed[name] = $i
        if ($(i+1) == "staleness_versions")       sv[name] = $i
        if ($(i+1) == "model_served_qps")         mqps[name] = $i
        if ($(i+1) == "model_shed_pct")           mshed[name] = $i
        if ($(i+1) == "model_staleness_ms")       mms[name] = $i
        if ($(i+1) == "model_staleness_versions") msv[name] = $i
        if ($(i+1) == "model_publish_us")         mpub[name] = $i
    }
}
function fleet(r) { return "ServingFleet/replicas=" r }
function model(ms) { return "ServeModel/interval_ms=" ms }
END {
    printf "{\n  \"num_cpu\": %d,\n  \"go\": \"%s\",\n", num_cpu, go_ver
    printf "  \"note\": \"emulated = the real zero-copy publication stack (double-buffered banks, version word last, batching frontend) serving while the trainer publishes every iteration; staleness_versions must be 1 in every cell. model = netsim closed-form pricing of a million-user load across publish cadences: denser publication tightens staleness_ms but costs swap-drain capacity, and once one fan-out outlasts the cadence the one-version bound breaks (staleness_versions > 1).\",\n"
    printf "  \"emulated\": [\n"
    first = 1
    for (r = 1; r <= 4; r *= 2) {
        name = fleet(r)
        if (qps[name] == "") continue
        printf "%s    {\"replicas\": %d, \"served_qps\": %s, \"shed_pct\": %s, \"staleness_versions\": %s}",
            (first ? "" : ",\n"), r, qps[name], shed[name], sv[name]
        first = 0
        if (sv[name] + 0 > 1) bound_broken = 1
    }
    printf "\n  ],\n"
    printf "  \"emulated_staleness_bound_holds\": %s,\n", bound_broken ? "false" : "true"
    printf "  \"model_curve\": [\n"
    first = 1
    split("5000 1000 500 200 100 50", cadences, " ")
    for (c = 1; c <= 6; c++) {
        name = model(cadences[c])
        if (mqps[name] == "") continue
        printf "%s    {\"publish_interval_ms\": %s, \"served_qps\": %s, \"shed_pct\": %s, \"staleness_ms\": %s, \"staleness_versions\": %s, \"publish_us\": %s}",
            (first ? "" : ",\n"), cadences[c], mqps[name], mshed[name], mms[name], msv[name], mpub[name]
        first = 0
    }
    printf "\n  ],\n"
    printf "  \"model_staleness_ms_5000_vs_50\": [%s, %s]\n", mms[model(5000)], mms[model(50)]
    printf "}\n"
}' "$TMP/serve.txt" > "$OUT_SERVE"

echo "wrote $OUT_SERVE" >&2
